#include "obs/metrics.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>
#include <thread>

#include "common/format.hpp"
#include "common/status.hpp"

namespace mpixccl::obs {

namespace {

/// Stable text for a double in JSON/CSV (no locale surprises, enough digits
/// to round-trip counters-as-doubles and microsecond sums).
std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

// Caller-chosen metric names go into JSON string literals verbatim; the
// shared fmt::json_escape handles the characters that would break the
// document (quote, backslash, control).
using fmt::json_escape;

/// RFC 4180 quoting for CSV fields that contain a separator, quote, or
/// newline; other fields pass through unchanged.
std::string csv_field(std::string_view s) {
  if (s.find_first_of(",\"\n\r") == std::string_view::npos) {
    return std::string(s);
  }
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void render_hist_json(std::ostringstream& os, const HistogramSnapshot& h) {
  os << "{\"count\":" << h.count << ",\"sum\":" << num(h.sum);
  if (h.count > 0) {
    os << ",\"p50\":" << num(h.p50()) << ",\"p90\":" << num(h.p90())
       << ",\"p99\":" << num(h.p99());
  }
  os << ",\"buckets\":[";
  bool first = true;
  for (const auto& [le, n] : h.buckets) {
    if (!first) os << ',';
    first = false;
    if (std::isinf(le)) {
      os << "{\"le\":\"inf\",\"count\":" << n << '}';
    } else {
      os << "{\"le\":" << num(le) << ",\"count\":" << n << '}';
    }
  }
  os << "]}";
}

}  // namespace

HistogramSnapshot merge_histograms(const HistogramSnapshot& a,
                                   const HistogramSnapshot& b) {
  HistogramSnapshot m;
  m.count = a.count + b.count;
  m.sum = a.sum + b.sum;
  // Two-pointer merge on the ascending upper bounds. Equal bounds (the
  // common case: both sides come from the same log2 bucketing) collapse
  // into one bucket with summed counts; +inf compares equal to +inf, so
  // the unbounded tails merge too.
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.buckets.size() || j < b.buckets.size()) {
    if (j >= b.buckets.size() ||
        (i < a.buckets.size() && a.buckets[i].first < b.buckets[j].first)) {
      m.buckets.push_back(a.buckets[i++]);
    } else if (i >= a.buckets.size() ||
               b.buckets[j].first < a.buckets[i].first) {
      m.buckets.push_back(b.buckets[j++]);
    } else {
      m.buckets.emplace_back(a.buckets[i].first,
                             a.buckets[i].second + b.buckets[j].second);
      ++i;
      ++j;
    }
  }
  return m;
}

std::string hist_to_json(const HistogramSnapshot& h) {
  std::ostringstream os;
  render_hist_json(os, h);
  return os.str();
}

namespace {
std::mutex g_meta_mu;
SnapshotMeta g_meta;
}  // namespace

void set_snapshot_meta(int rank, int world_size, std::string_view profile,
                       std::string_view topology) {
  std::lock_guard lock(g_meta_mu);
  // First stamp wins the rank label; a second distinct rank proves this
  // process merges ranks, so the label degrades to -1.
  if (g_meta.world_size != 0 && g_meta.rank != rank) {
    g_meta.rank = -1;
  } else {
    g_meta.rank = rank;
  }
  g_meta.world_size = world_size;
  g_meta.profile = std::string(profile);
  g_meta.topology = std::string(topology);
}

SnapshotMeta snapshot_meta() {
  std::lock_guard lock(g_meta_mu);
  return g_meta;
}

void clear_snapshot_meta() {
  std::lock_guard lock(g_meta_mu);
  g_meta = SnapshotMeta{};
}

double HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank in (0, count]: the q-quantile sits after `target` samples.
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (const auto& [le, n] : buckets) {
    const double dn = static_cast<double>(n);
    if (cum + dn >= target) {
      // Lower edge of this log2 bucket: le/2 in general, 0 for the first
      // bucket (<= 1), bucket_le(kBuckets-2) for the unbounded last one.
      if (std::isinf(le)) return Histogram::bucket_le(Histogram::kBuckets - 2);
      const double frac = dn > 0.0 ? (target - cum) / dn : 1.0;
      if (le <= 1.0) return le * frac;  // linear: log has no lower edge at 0
      const double lo = le / 2.0;
      return lo * std::pow(le / lo, frac);  // log-linear inside (le/2, le]
    }
    cum += dn;
  }
  // Rounding left target a hair past the final cumulative count.
  const double last = buckets.empty() ? 0.0 : buckets.back().first;
  return std::isinf(last) ? Histogram::bucket_le(Histogram::kBuckets - 2) : last;
}

void Counter::add(std::uint64_t n) {
  const auto h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  add(n, static_cast<int>(h & 0x7fffffff));
}

std::size_t Histogram::bucket_of(double v) {
  if (!(v > 1.0)) return 0;  // also catches NaN and negatives
  // Bucket index = position of the smallest power of two >= v.
  const double capped = std::min(v, 9.0e18);  // keep the cast in range
  const auto u = static_cast<std::uint64_t>(std::ceil(capped));
  const auto w = static_cast<std::size_t>(std::bit_width(u - 1));
  return std::min(w, kBuckets - 1);
}

double Histogram::bucket_le(std::size_t i) {
  if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(i));
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) s.buckets.emplace_back(bucket_le(i), n);
  }
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry r;
  return r;
}

void Registry::record_call(core::CollOp op, core::Engine engine, int rank,
                           std::size_t bytes) {
  CollCell& c = cell(op, engine);
  c.calls.add(1, rank);
  c.bytes.add(bytes, rank);
  c.size_hist.observe(static_cast<double>(bytes));
}

void Registry::record_latency(core::CollOp op, core::Engine engine, double us) {
  cell(op, engine).latency_us_hist.observe(us);
}

void Registry::record_latency(core::CollOp op, core::Engine engine,
                              std::size_t bytes, double us) {
  CollCell& c = cell(op, engine);
  c.latency_us_hist.observe(us);
  c.band_latency_us[size_band_of(bytes)].observe(us);
}

HistogramSnapshot Registry::band_latency(core::CollOp op, core::Engine engine,
                                         std::size_t band) const {
  require(band < kSizeBands, "Registry::band_latency: band out of range");
  return cell(op, engine).band_latency_us[band].snapshot();
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(names_mu_);
  return counters_[std::string(name)];
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(names_mu_);
  return gauges_[std::string(name)];
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(names_mu_);
  return histograms_[std::string(name)];
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot s;
  s.meta = snapshot_meta();
  for (const core::CollOp op : core::kAllCollOps) {
    for (const core::Engine e :
         {core::Engine::Mpi, core::Engine::Xccl, core::Engine::Hier}) {
      const CollCell& c = cell(op, e);
      const std::uint64_t calls = c.calls.value();
      if (calls == 0) continue;
      CollRow row;
      row.op = op;
      row.engine = e;
      row.calls = calls;
      row.bytes = c.bytes.value();
      row.size_hist = c.size_hist.snapshot();
      row.latency_us_hist = c.latency_us_hist.snapshot();
      for (std::size_t b = 0; b < kSizeBands; ++b) {
        row.band_latency_us[b] = c.band_latency_us[b].snapshot();
      }
      s.collectives.push_back(std::move(row));
    }
  }
  std::lock_guard lock(names_mu_);
  for (const auto& [name, c] : counters_) {
    s.counters.push_back({name, static_cast<double>(c.value())});
  }
  for (const auto& [name, g] : gauges_) s.gauges.push_back({name, g.value()});
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace_back(name, h.snapshot());
  }
  return s;
}

std::uint64_t Registry::engine_calls(core::Engine e) const {
  std::uint64_t total = 0;
  for (const core::CollOp op : core::kAllCollOps) total += cell(op, e).calls.value();
  return total;
}

std::uint64_t Registry::engine_bytes(core::Engine e) const {
  std::uint64_t total = 0;
  for (const core::CollOp op : core::kAllCollOps) total += cell(op, e).bytes.value();
  return total;
}

void Registry::reset() {
  for (auto& per_op : coll_) {
    for (auto& c : per_op) {
      c.calls.reset();
      c.bytes.reset();
      c.size_hist.reset();
      c.latency_us_hist.reset();
      for (auto& b : c.band_latency_us) b.reset();
    }
  }
  std::lock_guard lock(names_mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

std::string MetricsSnapshot::to_json(std::string_view extra_fields) const {
  std::ostringstream os;
  os << "{\"schema\":\"mpixccl.metrics.v1\",";
  if (meta.world_size > 0) {
    os << "\"meta\":{\"rank\":" << meta.rank
       << ",\"world_size\":" << meta.world_size << ",\"profile\":\""
       << json_escape(meta.profile) << "\",\"topology\":\""
       << json_escape(meta.topology) << "\"},";
  }
  os << "\"collectives\":[";
  bool first = true;
  for (const CollRow& r : collectives) {
    if (!first) os << ',';
    first = false;
    os << "{\"op\":\"" << to_string(r.op) << "\",\"engine\":\""
       << to_string(r.engine) << "\",\"calls\":" << r.calls
       << ",\"bytes\":" << r.bytes << ",\"size_hist\":";
    render_hist_json(os, r.size_hist);
    os << ",\"latency_us_hist\":";
    render_hist_json(os, r.latency_us_hist);
    os << ",\"bands\":[";
    bool first_band = true;
    for (std::size_t b = 0; b < kSizeBands; ++b) {
      if (r.band_latency_us[b].count == 0) continue;
      if (!first_band) os << ',';
      first_band = false;
      os << "{\"band\":\"" << size_band_name(b) << "\",\"latency_us_hist\":";
      render_hist_json(os, r.band_latency_us[b]);
      os << '}';
    }
    os << "]}";
  }
  os << "],\"counters\":[";
  first = true;
  for (const NamedValue& v : counters) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(v.name) << "\",\"value\":"
       << num(v.value) << '}';
  }
  os << "],\"gauges\":[";
  first = true;
  for (const NamedValue& v : gauges) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(v.name) << "\",\"value\":"
       << num(v.value) << '}';
  }
  os << "],\"histograms\":[";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(name) << "\",\"hist\":";
    render_hist_json(os, h);
    os << '}';
  }
  os << ']';
  if (!extra_fields.empty()) os << ',' << extra_fields;
  os << '}';
  return os.str();
}

std::string MetricsSnapshot::to_csv() const {
  std::ostringstream os;
  os << "kind,name,field,value\n";
  for (const CollRow& r : collectives) {
    const std::string key =
        std::string(to_string(r.op)) + '/' + std::string(to_string(r.engine));
    os << "coll," << key << ",calls," << r.calls << '\n';
    os << "coll," << key << ",bytes," << r.bytes << '\n';
    os << "coll," << key << ",avg_bytes," << num(r.size_hist.avg()) << '\n';
    os << "coll," << key << ",avg_latency_us," << num(r.latency_us_hist.avg())
       << '\n';
    if (r.latency_us_hist.count > 0) {
      os << "coll," << key << ",p50_latency_us," << num(r.latency_us_hist.p50())
         << '\n';
      os << "coll," << key << ",p90_latency_us," << num(r.latency_us_hist.p90())
         << '\n';
      os << "coll," << key << ",p99_latency_us," << num(r.latency_us_hist.p99())
         << '\n';
    }
    for (std::size_t b = 0; b < kSizeBands; ++b) {
      const HistogramSnapshot& h = r.band_latency_us[b];
      if (h.count == 0) continue;
      const std::string bkey =
          "band[" + std::string(size_band_name(b)) + "]_latency_us";
      os << "coll," << key << ',' << bkey << "_count," << h.count << '\n';
      os << "coll," << key << ',' << bkey << "_p50," << num(h.p50()) << '\n';
      os << "coll," << key << ',' << bkey << "_p99," << num(h.p99()) << '\n';
    }
  }
  for (const NamedValue& v : counters) {
    os << "counter," << csv_field(v.name) << ",value," << num(v.value) << '\n';
  }
  for (const NamedValue& v : gauges) {
    os << "gauge," << csv_field(v.name) << ",value," << num(v.value) << '\n';
  }
  for (const auto& [name, h] : histograms) {
    os << "histogram," << csv_field(name) << ",count," << h.count << '\n';
    os << "histogram," << csv_field(name) << ",avg," << num(h.avg()) << '\n';
    if (h.count > 0) {
      os << "histogram," << csv_field(name) << ",p50," << num(h.p50()) << '\n';
      os << "histogram," << csv_field(name) << ",p99," << num(h.p99()) << '\n';
    }
  }
  return os.str();
}

void Registry::save_json(const std::string& path) const {
  std::ofstream out(path);
  require(out.good(), "Registry::save_json: cannot open " + path);
  out << snapshot().to_json() << '\n';
  require(out.good(), "Registry::save_json: write failed");
}

void Registry::save_csv(const std::string& path) const {
  std::ofstream out(path);
  require(out.good(), "Registry::save_csv: cannot open " + path);
  out << snapshot().to_csv();
  require(out.good(), "Registry::save_csv: write failed");
}

}  // namespace mpixccl::obs
