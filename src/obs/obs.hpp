#pragma once
// Unified observability surface for MPI-xCCL: one switchboard over the
// metrics registry (metrics.hpp), the dispatch-decision log (decision.hpp)
// and the virtual-time tracer (sim/trace.hpp).
//
//   Level::Off        nothing beyond the always-on lock-free registry
//   Level::Metrics    registry + exporters active (the default)
//   Level::Decisions  + dispatch-decision log
//   Level::Trace      + sim::Trace spans (Chrome/Perfetto timeline)
//
// Environment activation (read once by init_from_env(), which every bench,
// harness entry point and the CLI call):
//   MPIXCCL_OBS_LEVEL      off|metrics|decisions|trace (or 0..3)
//   MPIXCCL_METRICS_FILE   write the metrics snapshot here at exit
//                          (JSON; a sibling .csv is written next to it)
//   MPIXCCL_TRACE_FILE     write the Chrome-trace JSON here at exit
//                          (implies Level::Trace)
//   MPIXCCL_DECISIONS_FILE write the decision "why" report here at exit
//                          (implies Level::Decisions)

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/decision.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace mpixccl::obs {

enum class Level : std::uint8_t { Off = 0, Metrics = 1, Decisions = 2, Trace = 3 };

constexpr std::string_view to_string(Level l) {
  switch (l) {
    case Level::Off: return "off";
    case Level::Metrics: return "metrics";
    case Level::Decisions: return "decisions";
    case Level::Trace: return "trace";
  }
  return "?";
}

/// Current level (atomic; hot paths read derived flags instead).
[[nodiscard]] Level level();

/// Set the level and propagate: enables the decision log at >= Decisions and
/// sim::Trace at Trace. Dropping the level disables only what set_level
/// itself enabled (a trace turned on directly via sim::Trace stays on).
void set_level(Level l);

/// Parse "off"/"metrics"/"decisions"/"trace" or "0".."3".
[[nodiscard]] std::optional<Level> parse_level(std::string_view text);

/// The MPIXCCL_* observability environment, as read right now.
struct EnvConfig {
  std::optional<Level> level;  ///< MPIXCCL_OBS_LEVEL, if set and valid
  std::string metrics_file;    ///< MPIXCCL_METRICS_FILE
  std::string trace_file;      ///< MPIXCCL_TRACE_FILE
  std::string decisions_file;  ///< MPIXCCL_DECISIONS_FILE

  [[nodiscard]] bool any_export() const {
    return !metrics_file.empty() || !trace_file.empty() ||
           !decisions_file.empty();
  }
};

[[nodiscard]] EnvConfig env_config();

/// Apply the environment once per process (idempotent): set the level
/// (export files imply the level they need), arm the fleet telemetry layer
/// (MPIXCCL_FLEET=1 enables arrival profiling, MPIXCCL_FLEET_RING sizes the
/// per-rank arrival ring, MPIXCCL_WATCHDOG_TIMEOUT_MS starts the hang
/// watchdog), and register an atexit hook that writes every configured
/// export file — so any bench or harness run "emits snapshots for free"
/// when the variables are set. The exit hook makes the process exit with
/// status 1 (after a clear stderr message) when any export file cannot be
/// written: a run whose requested artifacts are missing must not look
/// green to the harness that asked for them.
void init_from_env();

/// Write all env-configured artifacts now (also runs at exit). Safe to call
/// repeatedly; later calls overwrite with fresher snapshots. Never throws:
/// returns one human-readable message per artifact that could not be
/// written (empty = everything requested is on disk), so callers — the CLI,
/// the exit hook — choose between reporting and exiting nonzero.
[[nodiscard]] std::vector<std::string> flush();

/// Merged human-readable report: per-(collective, engine) calls / bytes /
/// mean size / mean virtual latency from the registry, followed by the
/// decision-log summary when enabled. The process-wide, engine-annotated
/// successor of XcclMpi::profile_report().
[[nodiscard]] std::string report();

/// RAII span feeding sim::Trace: captures virtual begin/end times around a
/// scope and records them on the rank's track. Free when tracing is off
/// (one atomic load, no strings).
class Span {
 public:
  Span(int rank, const sim::VirtualClock& clock, std::string_view name,
       std::string_view category);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const sim::VirtualClock* clock_ = nullptr;
  int rank_ = 0;
  double t0_ = 0.0;
  bool armed_ = false;
  std::string name_;
  std::string category_;
};

}  // namespace mpixccl::obs
