#include "obs/obs.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>

#include "common/status.hpp"
#include "obs/analyze.hpp"
#include "obs/fleet.hpp"
#include "sim/trace.hpp"

namespace mpixccl::obs {

namespace {

std::atomic<Level> g_level{Level::Metrics};
// Whether set_level (not a direct sim::Trace user) turned the tracer on, so
// lowering the level does not stomp an externally enabled trace.
std::atomic<bool> g_obs_armed_trace{false};

std::once_flag g_env_once;
std::mutex g_cfg_mu;
EnvConfig g_cfg;  // the config flush() writes; set by init_from_env()

std::string env_str(const char* name) {
  const char* v = std::getenv(name);
  return v ? std::string(v) : std::string();
}

std::string csv_sibling(const std::string& json_path) {
  const auto dot = json_path.rfind('.');
  const auto slash = json_path.rfind('/');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return json_path + ".csv";
  }
  return json_path.substr(0, dot) + ".csv";
}

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

Level level() { return g_level.load(std::memory_order_acquire); }

void set_level(Level l) {
  g_level.store(l, std::memory_order_release);
  DecisionLog::instance().set_enabled(l >= Level::Decisions);
  auto& trace = sim::Trace::instance();
  if (l >= Level::Trace) {
    if (!trace.enabled()) {
      trace.set_enabled(true);
      g_obs_armed_trace.store(true, std::memory_order_release);
    }
  } else if (g_obs_armed_trace.exchange(false, std::memory_order_acq_rel)) {
    trace.set_enabled(false);
  }
}

std::optional<Level> parse_level(std::string_view text) {
  if (text == "off" || text == "0") return Level::Off;
  if (text == "metrics" || text == "1") return Level::Metrics;
  if (text == "decisions" || text == "2") return Level::Decisions;
  if (text == "trace" || text == "3") return Level::Trace;
  return std::nullopt;
}

EnvConfig env_config() {
  EnvConfig cfg;
  cfg.level = parse_level(env_str("MPIXCCL_OBS_LEVEL"));
  cfg.metrics_file = env_str("MPIXCCL_METRICS_FILE");
  cfg.trace_file = env_str("MPIXCCL_TRACE_FILE");
  cfg.decisions_file = env_str("MPIXCCL_DECISIONS_FILE");
  return cfg;
}

void init_from_env() {
  std::call_once(g_env_once, [] {
    EnvConfig cfg = env_config();
    Level l = level();
    if (cfg.level) {
      l = *cfg.level;
    } else {
      // Requested artifacts imply the level that produces them.
      if (!cfg.decisions_file.empty()) l = std::max(l, Level::Decisions);
      if (!cfg.trace_file.empty()) l = std::max(l, Level::Trace);
    }
    set_level(l);
    {
      std::lock_guard lock(g_cfg_mu);
      g_cfg = std::move(cfg);
    }
    bool any;
    {
      std::lock_guard lock(g_cfg_mu);
      any = g_cfg.any_export();
    }
    if (any) {
      // Force-construct every singleton flush() touches BEFORE registering
      // the exit handler: atexit handlers and static destructors run LIFO,
      // so a singleton first constructed after this registration would be
      // destroyed before flush() runs and flush() would touch a dead object.
      Registry::instance();
      DecisionLog::instance();
      FlightRecorder::instance();
      sim::Trace::instance();
      std::atexit([] {
        const std::vector<std::string> errors = flush();
        if (errors.empty()) return;
        for (const std::string& e : errors) {
          std::fprintf(stderr, "mpixccl obs: %s\n", e.c_str());
        }
        // Exiting from an atexit handler: exit() here would recurse, and
        // returning would report success for a run whose requested
        // artifacts were silently dropped.
        std::_Exit(1);
      });
    }

    // Fleet telemetry layer (obs/fleet.hpp): arrival-skew profiling and the
    // hang watchdog, both off unless asked for.
    if (env_str("MPIXCCL_FLEET") == "1") fleet::set_profiling(true);
    if (const std::string ring = env_str("MPIXCCL_FLEET_RING");
        !ring.empty()) {
      const long n = std::strtol(ring.c_str(), nullptr, 10);
      if (n > 0) fleet::set_ring_capacity(static_cast<std::size_t>(n));
    }
    if (const fleet::WatchdogConfig wd = fleet::WatchdogConfig::from_env();
        wd.timeout_ms > 0.0) {
      fleet::Watchdog::instance().start(wd);
    }
  });
}

std::vector<std::string> flush() {
  EnvConfig cfg;
  {
    std::lock_guard lock(g_cfg_mu);
    cfg = g_cfg;
  }
  std::vector<std::string> errors;
  const auto attempt = [&errors](const char* what, const std::string& path,
                                 const auto& write) {
    try {
      write();
    } catch (const std::exception& e) {
      errors.push_back(std::string(what) + " export to '" + path +
                       "' failed: " + e.what());
    }
  };
  if (!cfg.metrics_file.empty()) {
    // The composite export: the registry snapshot with the flight-recorder
    // top-K riding along as a top-level field.
    attempt("metrics", cfg.metrics_file,
            [&] { save_metrics_json(cfg.metrics_file); });
    const std::string csv = csv_sibling(cfg.metrics_file);
    attempt("metrics CSV", csv, [&] { Registry::instance().save_csv(csv); });
  }
  if (!cfg.trace_file.empty()) {
    attempt("trace", cfg.trace_file,
            [&] { sim::Trace::instance().save_chrome_json(cfg.trace_file); });
  }
  if (!cfg.decisions_file.empty()) {
    attempt("decisions", cfg.decisions_file,
            [&] { DecisionLog::instance().save_report(cfg.decisions_file); });
  }
  return errors;
}

std::string report() {
  std::ostringstream os;
  os << "observability report (level=" << to_string(level()) << ")\n";
  const MetricsSnapshot s = Registry::instance().snapshot();
  os << "collectives (process-wide, all ranks merged):\n";
  char line[160];
  std::snprintf(line, sizeof(line), "  %-16s %-5s %10s %14s %12s %14s\n",
                "op", "eng", "calls", "bytes", "avg-bytes", "avg-us");
  os << line;
  if (s.collectives.empty()) os << "  (no collective calls recorded)\n";
  for (const CollRow& r : s.collectives) {
    std::snprintf(line, sizeof(line), "  %-16s %-5s %10llu %14llu %12s %14s\n",
                  std::string(to_string(r.op)).c_str(),
                  std::string(to_string(r.engine)).c_str(),
                  static_cast<unsigned long long>(r.calls),
                  static_cast<unsigned long long>(r.bytes),
                  num(r.size_hist.avg()).c_str(),
                  num(r.latency_us_hist.avg()).c_str());
    os << line;
  }
  if (!s.counters.empty() || !s.gauges.empty() || !s.histograms.empty()) {
    os << "named metrics:\n";
    for (const NamedValue& v : s.counters) {
      os << "  counter " << v.name << " = " << num(v.value) << '\n';
    }
    for (const NamedValue& v : s.gauges) {
      os << "  gauge " << v.name << " = " << num(v.value) << '\n';
    }
    for (const auto& [name, h] : s.histograms) {
      os << "  histogram " << name << ": count=" << h.count
         << " avg=" << num(h.avg()) << '\n';
    }
  }
  auto& dlog = DecisionLog::instance();
  if (dlog.enabled() || dlog.total() > 0) {
    os << dlog.why_report();
  } else {
    os << "dispatch decisions: disabled (MPIXCCL_OBS_LEVEL=decisions)\n";
  }
  return os.str();
}

Span::Span(int rank, const sim::VirtualClock& clock, std::string_view name,
           std::string_view category) {
  if (!sim::Trace::instance().enabled()) return;
  armed_ = true;
  clock_ = &clock;
  rank_ = rank;
  t0_ = clock.now();
  name_ = name;
  category_ = category;
}

Span::~Span() {
  if (!armed_) return;
  sim::Trace::instance().record(rank_, name_, category_, t0_, clock_->now());
}

}  // namespace mpixccl::obs
