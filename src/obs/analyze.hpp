#pragma once
// Perf-analysis layer: turns the raw telemetry the observability subsystem
// collects (metrics registry, decision ring, sim::Trace spans) into
// *answers*, closing the telemetry→decision loop:
//
//  * Flight recorder — a bounded top-K table of the slowest collective
//    dispatches, each joined with its DispatchDecision at record time, so
//    one record answers both "why was this call slow" and "why was it
//    routed there". Always on (the fast path is one relaxed load against
//    the current K-th threshold); exported inside the metrics snapshot.
//  * Critical-path attribution — analyzes trace spans to attribute each
//    dispatch's latency to its recorded child stages (hier's intra_rs /
//    inter_ar / intra_ag, xccl group compositions), reporting per-stage
//    shares, coverage and the longest idle gap per (collective, size-band).
//  * `top` report — hottest (collective, engine, size-band) rows by total
//    virtual time, with p50/p90/p99 from the registry's band histograms.
//  * Bench-regression gate — the `mpixccl.bench.v1` result schema every
//    fig*/abl* bench emits (via omb::ResultLog), a parser for it, and a
//    per-point diff with noise thresholds powering `mpixccl perf diff`
//    and the CI gate against the committed BENCH_core.json baseline.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/decision.hpp"
#include "obs/metrics.hpp"
#include "sim/trace.hpp"

namespace mpixccl::obs {

// ---- Flight recorder --------------------------------------------------------

/// One slow dispatch, joined with the decision that routed it.
struct FlightRecord {
  core::CollOp op = core::CollOp::Allreduce;
  core::Engine engine = core::Engine::Mpi;
  std::size_t bytes = 0;
  int rank = 0;
  double begin_us = 0.0;
  double end_us = 0.0;
  DispatchDecision decision;  ///< the dispatch's fully-explained routing
  /// Id of the compiled plan that routed this dispatch (joins against
  /// PlanCache entries); 0 for planless paths (barrier, composed ops).
  std::uint64_t plan_id = 0;

  [[nodiscard]] double elapsed_us() const { return end_us - begin_us; }
};

/// Process-wide bounded table of the K slowest dispatches. Recording is
/// always on: calls faster than the current K-th entry bounce off one
/// relaxed atomic load without taking the lock.
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 16;

  static FlightRecorder& instance();

  /// Drops the fastest retained entries when shrinking.
  void set_capacity(std::size_t k);
  [[nodiscard]] std::size_t capacity() const;

  void record(const FlightRecord& r);
  /// Retained records, slowest first.
  [[nodiscard]] std::vector<FlightRecord> records() const;
  void clear();
  /// Drop `rank`'s records whose plan_id is set but absent from `live` —
  /// they reference a plan that has been evicted or invalidated, so the
  /// join they exist for can no longer resolve. Other ranks' records are
  /// untouched (the recorder is process-wide, XcclMpi instances per-rank).
  /// Returns the number of records removed.
  std::size_t purge_plan_records(int rank,
                                 const std::vector<std::uint64_t>& live);

  /// Raw JSON `"flight_recorder":[...]` top-level field, ready for
  /// MetricsSnapshot::to_json(extra_fields).
  [[nodiscard]] std::string to_json_field() const;
  /// Human-readable table, slowest first.
  [[nodiscard]] std::string report() const;

 private:
  FlightRecorder() = default;

  mutable std::mutex mu_;
  std::atomic<double> floor_{0.0};  ///< K-th elapsed once full, else 0
  std::vector<FlightRecord> top_;   ///< sorted by elapsed, descending
  std::size_t capacity_ = kDefaultCapacity;
};

// ---- Critical-path attribution ----------------------------------------------

/// One top-level dispatch span with its latency attributed to child stages.
struct DispatchAttribution {
  int rank = 0;
  std::string op;      ///< span name, e.g. "allreduce"
  std::string engine;  ///< span category: "mpi" / "xccl" / "hier"
  double begin_us = 0.0;
  double end_us = 0.0;
  /// Union length of the child stage spans inside this dispatch.
  double attributed_us = 0.0;
  /// Longest sub-interval of the dispatch no child stage covers.
  double longest_gap_us = 0.0;
  /// (stage name, total us) for every child stage, insertion-ordered.
  std::vector<std::pair<std::string, double>> stage_us;
  bool joined = false;        ///< a DispatchDecision matched this span
  DispatchDecision decision;  ///< valid when joined

  [[nodiscard]] double duration_us() const { return end_us - begin_us; }
  [[nodiscard]] double coverage() const {
    return duration_us() > 0.0 ? attributed_us / duration_us()
                               : (stage_us.empty() ? 0.0 : 1.0);
  }
};

/// Pair every top-level dispatch span (category is an engine name) with the
/// stage spans (category "*.stage") nested inside it on the same rank, and
/// join each with the DispatchDecision recorded during it (matched by rank,
/// op and completion time). Decisions typically come from
/// DecisionLog::instance().records(); pass {} to skip the join.
std::vector<DispatchAttribution> attribute_dispatches(
    const std::vector<sim::TraceEvent>& events,
    const std::vector<DispatchDecision>& decisions);

/// Aggregate attribution per (collective, size-band): stage shares of total
/// dispatch time, mean coverage, and the longest idle gap seen — the
/// evidence hier-engine tuning reads. Spans with no recorded stages are
/// summarized in a trailing note.
std::string critical_path_report(const std::vector<DispatchAttribution>& attrs);

// ---- Hottest-rows report ----------------------------------------------------

/// Rank (collective, engine, size-band) rows by total virtual latency; each
/// row carries calls, total us and p50/p90/p99. Rows without band data
/// (latency recorded through the byte-less overload) fall back to one "all"
/// band from the plain latency histogram.
std::string top_report(const MetricsSnapshot& snap, std::size_t max_rows = 20);

// ---- Composite export -------------------------------------------------------

/// Metrics snapshot JSON with the flight recorder riding along (the file
/// obs::flush() writes for MPIXCCL_METRICS_FILE).
void save_metrics_json(const std::string& path);

// ---- Bench results ("mpixccl.bench.v1") and the regression diff -------------

struct BenchPoint {
  std::string table;   ///< table title, e.g. "Fig 5: allreduce w/ NCCL ..."
  std::string series;  ///< series name within the table, e.g. "hybrid-xccl"
  std::string unit;    ///< "us", "MBps", ...
  std::size_t bytes = 0;
  double value = 0.0;

  /// Identity of a point across runs (table + series + message size).
  [[nodiscard]] std::string key() const;
  /// Regression direction: latency-like units regress upward, bandwidth /
  /// rate series regress downward.
  [[nodiscard]] bool lower_is_better() const;
};

struct BenchDoc {
  std::string schema = "mpixccl.bench.v1";
  std::string bench;  ///< which binary produced it
  std::vector<BenchPoint> points;
};

/// Render / parse the v1 schema. parse throws Error on malformed input or a
/// wrong schema tag.
std::string bench_json(const BenchDoc& doc);
BenchDoc parse_bench_json(std::string_view text);
BenchDoc load_bench_json(const std::string& path);

struct DiffOptions {
  /// Per-point noise threshold: a point regresses only when it is worse by
  /// more than rel_threshold relative AND abs_floor absolute (in the
  /// point's unit) — the virtual-time sim is deterministic, but the floor
  /// keeps sub-microsecond jitter in future backends from tripping the gate.
  double rel_threshold = 0.10;
  double abs_floor = 0.5;
};

struct PointDiff {
  BenchPoint base;
  double current = 0.0;
  double delta_rel = 0.0;  ///< (current - base) / base, sign as measured
  bool regressed = false;
  bool improved = false;
};

struct BenchDiff {
  std::vector<PointDiff> points;           ///< baseline ∩ current
  std::vector<std::string> missing;        ///< in baseline, not in current
  std::vector<std::string> added;          ///< in current, not in baseline
  int regressions = 0;
  int improvements = 0;

  [[nodiscard]] bool ok() const { return regressions == 0 && missing.empty(); }
  /// Human-readable verdict; names every regressed point.
  [[nodiscard]] std::string report() const;
};

BenchDiff bench_diff(const BenchDoc& baseline, const BenchDoc& current,
                     const DiffOptions& opt = {});

}  // namespace mpixccl::obs
