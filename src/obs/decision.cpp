#include "obs/decision.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace mpixccl::obs {

namespace {

std::string human_bytes(std::size_t b) {
  char buf[32];
  if (b >= (1u << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1fMB", static_cast<double>(b) / (1u << 20));
  } else if (b >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fKB", static_cast<double>(b) / 1024);
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", b);
  }
  return buf;
}

std::string breakpoint_text(std::size_t bp) {
  if (bp == 0) return "-";
  if (bp == SIZE_MAX) return "max";
  return std::to_string(bp);
}

}  // namespace

std::string to_line(const DispatchDecision& d) {
  std::ostringstream os;
  if (d.tune != TuneAudit::None) {
    // Audit record: [bytes, breakpoint] is the retuned range and
    // table_choice -> engine the before/after engines (see TuneAudit).
    os << '#' << d.seq << " tune." << to_string(d.tune) << ' '
       << to_string(d.op) << " [" << human_bytes(d.bytes) << ", "
       << breakpoint_text(d.breakpoint) << "] " << to_string(d.table_choice);
    if (d.table_choice != d.engine) os << "->" << to_string(d.engine);
    return os.str();
  }
  os << '#' << d.seq << " r" << d.rank << ' ' << to_string(d.op) << ' '
     << human_bytes(d.bytes) << " mode=" << to_string(d.mode)
     << " bp<=" << breakpoint_text(d.breakpoint) << ' '
     << to_string(d.table_choice);
  if (d.table_choice != d.engine || d.fell_back) {
    os << "->" << to_string(d.engine);
  }
  if (d.reason != FallbackReason::None) os << " [" << to_string(d.reason) << ']';
  if (d.composed) os << " composed";
  if (!d.level_path.empty()) os << " via " << d.level_path;
  return os.str();
}

DecisionLog& DecisionLog::instance() {
  static DecisionLog log;
  return log;
}

void DecisionLog::set_capacity(std::size_t n) {
  require(n > 0, "DecisionLog::set_capacity: capacity must be positive");
  std::lock_guard lock(mu_);
  // Re-linearize, keeping the newest records.
  std::vector<DispatchDecision> linear;
  linear.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    linear.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  if (linear.size() > n) {
    linear.erase(linear.begin(),
                 linear.begin() + static_cast<std::ptrdiff_t>(linear.size() - n));
  }
  ring_ = std::move(linear);
  head_ = 0;
  capacity_ = n;
}

std::uint64_t DecisionLog::push(DispatchDecision d) {
  if (!enabled()) return 0;
  std::lock_guard lock(mu_);
  d.seq = ++total_;
  if (d.tune == TuneAudit::None) {
    // Tuner audit records are not dispatches; keep them out of the
    // per-engine and per-reason dispatch tallies.
    ++reason_counts_[static_cast<std::size_t>(d.reason)];
    ++engine_counts_[static_cast<std::size_t>(d.engine)];
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(d);
  } else {
    ring_[head_] = d;
    head_ = (head_ + 1) % capacity_;
  }
  return d.seq;
}

std::vector<DispatchDecision> DecisionLog::records() const {
  std::lock_guard lock(mu_);
  std::vector<DispatchDecision> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t DecisionLog::total() const {
  std::lock_guard lock(mu_);
  return total_;
}

std::size_t DecisionLog::size() const {
  std::lock_guard lock(mu_);
  return ring_.size();
}

std::array<std::uint64_t, kFallbackReasonCount> DecisionLog::reason_counts()
    const {
  std::lock_guard lock(mu_);
  return reason_counts_;
}

void DecisionLog::clear() {
  std::lock_guard lock(mu_);
  ring_.clear();
  head_ = 0;
  total_ = 0;
  reason_counts_ = {};
  engine_counts_ = {};
}

std::string DecisionLog::why_report(std::size_t max_recent) const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  os << "dispatch decisions: " << total_ << " total (" << ring_.size()
     << " retained)\n";
  os << "  by engine:";
  for (const core::Engine e :
       {core::Engine::Mpi, core::Engine::Xccl, core::Engine::Hier}) {
    os << ' ' << to_string(e) << '='
       << engine_counts_[static_cast<std::size_t>(e)];
  }
  os << '\n';
  std::uint64_t fallbacks = 0;
  for (std::size_t i = 1; i < kFallbackReasonCount; ++i) {
    fallbacks += reason_counts_[i];
  }
  os << "  fallbacks/redirects: " << fallbacks << '\n';
  for (std::size_t i = 1; i < kFallbackReasonCount; ++i) {
    if (reason_counts_[i] == 0) continue;
    os << "    " << to_string(static_cast<FallbackReason>(i)) << ": "
       << reason_counts_[i] << '\n';
  }
  const std::size_t n = std::min(max_recent, ring_.size());
  if (n > 0) {
    os << "  recent:\n";
    for (std::size_t i = ring_.size() - n; i < ring_.size(); ++i) {
      os << "    " << to_line(ring_[(head_ + i) % ring_.size()]) << '\n';
    }
  }
  return os.str();
}

void DecisionLog::save_report(const std::string& path,
                              std::size_t max_recent) const {
  std::ofstream out(path);
  require(out.good(), "DecisionLog::save_report: cannot open " + path);
  out << why_report(max_recent);
  require(out.good(), "DecisionLog::save_report: write failed");
}

}  // namespace mpixccl::obs
