#include "obs/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "common/format.hpp"
#include "common/log.hpp"
#include "common/status.hpp"
#include "sim/fault.hpp"
#include "sim/trace.hpp"

namespace mpixccl::obs::fleet {

namespace {

using fmt::json_escape;

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---- Activation state -------------------------------------------------------

constexpr std::uint32_t kProfileBit = 1;    // arrival rings + level times
constexpr std::uint32_t kHeartbeatBit = 2;  // full heartbeat slot updates

std::atomic<std::uint32_t> g_mask{0};
std::atomic<std::size_t> g_ring_cap{1024};

std::mutex g_activation_mu;
bool g_profiling = false;
bool g_watchdog_running = false;

/// Recompute the hot-path mask from the two coarse switches (holding
/// g_activation_mu).
void refresh_mask_locked() {
  std::uint32_t mask = 0;
  if (g_profiling) mask |= kProfileBit | kHeartbeatBit;
  if (g_watchdog_running) mask |= kHeartbeatBit;
  g_mask.store(mask, std::memory_order_relaxed);
}

// ---- Per-rank heartbeat slots (fixed, lock-free) ----------------------------

struct alignas(64) Slot {
  std::atomic<std::uint64_t> enter_seq{0};
  std::atomic<std::uint64_t> done_seq{0};
  std::atomic<std::int64_t> beat_ns{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> plan{0};
  std::atomic<std::uint8_t> op{0};
  std::atomic<std::uint8_t> engine{0};
  std::atomic<std::uint8_t> in_flight{0};
};

Slot& slot(int rank) {
  static Slot slots[kMaxRanks];
  return slots[rank];
}

bool rank_ok(int rank) { return rank >= 0 && rank < kMaxRanks; }

// ---- Per-rank profiling data (locked; profiling paths only) -----------------

struct RankData {
  std::mutex mu;
  std::deque<Arrival> ring;
  std::map<std::string, std::pair<double, std::uint64_t>, std::less<>> levels;
};

RankData& rank_data(int rank) {
  static RankData data[kMaxRanks];
  return data[rank];
}

core::CollOp op_from_u8(std::uint8_t v) {
  require(v < std::size(core::kAllCollOps), "fleet: bad CollOp in blob");
  return static_cast<core::CollOp>(v);
}

core::Engine engine_from_u8(std::uint8_t v) {
  require(v <= 2, "fleet: bad Engine in blob");
  return static_cast<core::Engine>(v);
}

}  // namespace

bool profiling_enabled() {
  return (g_mask.load(std::memory_order_relaxed) & kProfileBit) != 0;
}

void set_profiling(bool on) {
  std::lock_guard lock(g_activation_mu);
  g_profiling = on;
  refresh_mask_locked();
}

std::size_t ring_capacity() {
  return g_ring_cap.load(std::memory_order_relaxed);
}

void set_ring_capacity(std::size_t n) {
  g_ring_cap.store(std::max<std::size_t>(n, 8), std::memory_order_relaxed);
}

void reset() {
  for (int r = 0; r < kMaxRanks; ++r) {
    Slot& s = slot(r);
    s.enter_seq.store(0, std::memory_order_relaxed);
    s.done_seq.store(0, std::memory_order_relaxed);
    s.beat_ns.store(0, std::memory_order_relaxed);
    s.bytes.store(0, std::memory_order_relaxed);
    s.plan.store(0, std::memory_order_relaxed);
    s.op.store(0, std::memory_order_relaxed);
    s.engine.store(0, std::memory_order_relaxed);
    s.in_flight.store(0, std::memory_order_relaxed);
    RankData& d = rank_data(r);
    std::lock_guard lock(d.mu);
    d.ring.clear();
    d.levels.clear();
  }
}

std::uint64_t dispatch_enter(int rank, core::CollOp op, double now_us) {
  if (!rank_ok(rank)) return 0;
  Slot& s = slot(rank);
  const std::uint64_t seq = s.enter_seq.load(std::memory_order_relaxed) + 1;
  // Injected stall runs before the seq bump and the beat: the stalled rank
  // looks exactly like a rank that never arrived at collective #seq, which
  // is the situation the watchdog must attribute.
  auto& faults = sim::FaultInjector::instance();
  if (faults.active()) faults.maybe_stall(rank, seq);
  s.enter_seq.store(seq, std::memory_order_relaxed);
  const std::uint32_t mask = g_mask.load(std::memory_order_relaxed);
  if (mask == 0) return seq;  // disabled fast path ends here
  if ((mask & kHeartbeatBit) != 0) {
    s.op.store(static_cast<std::uint8_t>(op), std::memory_order_relaxed);
    s.in_flight.store(1, std::memory_order_relaxed);
    s.beat_ns.store(steady_ns(), std::memory_order_relaxed);
  }
  if ((mask & kProfileBit) != 0) {
    Arrival a;
    a.seq = seq;
    a.op = op;
    a.enter_us = now_us;
    RankData& d = rank_data(rank);
    std::lock_guard lock(d.mu);
    d.ring.push_back(a);
    const std::size_t cap = ring_capacity();
    while (d.ring.size() > cap) d.ring.pop_front();
  }
  return seq;
}

void dispatch_exit(int rank, std::uint64_t seq, core::CollOp op,
                   std::size_t bytes, core::Engine engine, double exit_us) {
  if (!rank_ok(rank) || seq == 0) return;
  Slot& s = slot(rank);
  s.done_seq.store(seq, std::memory_order_relaxed);
  const std::uint32_t mask = g_mask.load(std::memory_order_relaxed);
  if (mask == 0) return;
  if ((mask & kHeartbeatBit) != 0) {
    s.op.store(static_cast<std::uint8_t>(op), std::memory_order_relaxed);
    s.engine.store(static_cast<std::uint8_t>(engine),
                   std::memory_order_relaxed);
    s.bytes.store(bytes, std::memory_order_relaxed);
    s.in_flight.store(0, std::memory_order_relaxed);
    s.beat_ns.store(steady_ns(), std::memory_order_relaxed);
  }
  if ((mask & kProfileBit) != 0) {
    RankData& d = rank_data(rank);
    std::lock_guard lock(d.mu);
    // The open record is the newest entry with our seq (profiling may have
    // been toggled mid-dispatch, so tolerate a miss).
    for (auto it = d.ring.rbegin(); it != d.ring.rend(); ++it) {
      if (it->seq == seq) {
        it->band = static_cast<std::uint8_t>(size_band_of(bytes));
        it->engine = engine;
        it->exit_us = exit_us;
        break;
      }
      if (it->seq < seq) break;
    }
  }
}

void dispatch_abort(int rank) {
  if (!rank_ok(rank)) return;
  Slot& s = slot(rank);
  s.in_flight.store(0, std::memory_order_relaxed);
  s.beat_ns.store(steady_ns(), std::memory_order_relaxed);
}

void note_plan(int rank, std::uint64_t plan_id) {
  if (!rank_ok(rank)) return;
  if ((g_mask.load(std::memory_order_relaxed) & kHeartbeatBit) == 0) return;
  slot(rank).plan.store(plan_id, std::memory_order_relaxed);
}

void app_beat(int rank) {
  if (!rank_ok(rank)) return;
  if ((g_mask.load(std::memory_order_relaxed) & kHeartbeatBit) == 0) return;
  slot(rank).beat_ns.store(steady_ns(), std::memory_order_relaxed);
}

void record_level(int rank, std::string_view level, double us) {
  if (!rank_ok(rank) || !profiling_enabled()) return;
  RankData& d = rank_data(rank);
  std::lock_guard lock(d.mu);
  auto it = d.levels.find(level);
  if (it == d.levels.end()) {
    it = d.levels.emplace(std::string(level), std::make_pair(0.0, 0)).first;
  }
  it->second.first += us;
  ++it->second.second;
}

LevelSpan::LevelSpan(int rank, const sim::VirtualClock& clock,
                     std::string_view stage, std::string_view level) {
  trace_ = sim::Trace::instance().enabled();
  fleet_ = profiling_enabled();
  if (!trace_ && !fleet_) return;
  clock_ = &clock;
  rank_ = rank;
  t0_ = clock.now();
  stage_ = stage;
  level_ = level;
}

LevelSpan::~LevelSpan() {
  if (clock_ == nullptr) return;
  const double now = clock_->now();
  if (trace_) {
    sim::Trace::instance().record(rank_, stage_ + "." + level_, "hier.stage",
                                  t0_, now);
  }
  if (fleet_) record_level(rank_, level_, now - t0_);
}

// ---- Rank-local capture -----------------------------------------------------

RankState local_rank_state(int rank, std::size_t decision_tail) {
  RankState st;
  st.rank = rank;
  if (!rank_ok(rank)) return st;
  Slot& s = slot(rank);
  st.heartbeat.enter_seq = s.enter_seq.load(std::memory_order_relaxed);
  st.heartbeat.done_seq = s.done_seq.load(std::memory_order_relaxed);
  st.heartbeat.in_flight =
      s.in_flight.load(std::memory_order_relaxed) != 0;
  st.heartbeat.op = op_from_u8(s.op.load(std::memory_order_relaxed));
  st.heartbeat.engine = engine_from_u8(s.engine.load(std::memory_order_relaxed));
  st.heartbeat.bytes = s.bytes.load(std::memory_order_relaxed);
  st.heartbeat.plan_id = s.plan.load(std::memory_order_relaxed);
  const std::int64_t beat = s.beat_ns.load(std::memory_order_relaxed);
  st.heartbeat.age_ms =
      beat == 0 ? 0.0 : static_cast<double>(steady_ns() - beat) / 1e6;
  {
    RankData& d = rank_data(rank);
    std::lock_guard lock(d.mu);
    st.arrivals.assign(d.ring.begin(), d.ring.end());
    for (const auto& [level, acc] : d.levels) {
      st.levels.push_back({level, acc.first, acc.second});
    }
  }
  if (decision_tail > 0) {
    for (const DispatchDecision& d : DecisionLog::instance().records()) {
      if (d.rank != rank || d.tune != TuneAudit::None) continue;
      st.decision_tail.push_back(d);
    }
    if (st.decision_tail.size() > decision_tail) {
      st.decision_tail.erase(
          st.decision_tail.begin(),
          st.decision_tail.end() -
              static_cast<std::ptrdiff_t>(decision_tail));
    }
  }
  return st;
}

// ---- Wire format ------------------------------------------------------------

namespace {

constexpr std::uint32_t kMagic = 0x464C5431;  // "FLT1"

template <typename T>
void put(std::string& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

void put_str(std::string& out, std::string_view s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

struct Reader {
  std::string_view data;
  std::size_t pos = 0;

  template <typename T>
  T get() {
    require(pos + sizeof(T) <= data.size(), "fleet: truncated blob");
    T v;
    std::memcpy(&v, data.data() + pos, sizeof(T));
    pos += sizeof(T);
    return v;
  }

  std::string get_str() {
    const auto n = get<std::uint32_t>();
    require(pos + n <= data.size(), "fleet: truncated blob string");
    std::string s(data.substr(pos, n));
    pos += n;
    return s;
  }
};

}  // namespace

std::string serialize(const RankState& st) {
  std::string out;
  put<std::uint32_t>(out, kMagic);
  put<std::int32_t>(out, st.rank);
  const HeartbeatView& hb = st.heartbeat;
  put<std::uint64_t>(out, hb.enter_seq);
  put<std::uint64_t>(out, hb.done_seq);
  put<std::uint8_t>(out, hb.in_flight ? 1 : 0);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(hb.op));
  put<std::uint8_t>(out, static_cast<std::uint8_t>(hb.engine));
  put<std::uint64_t>(out, hb.bytes);
  put<std::uint64_t>(out, hb.plan_id);
  put<double>(out, hb.age_ms);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(st.arrivals.size()));
  for (const Arrival& a : st.arrivals) {
    put<std::uint64_t>(out, a.seq);
    put<std::uint8_t>(out, static_cast<std::uint8_t>(a.op));
    put<std::uint8_t>(out, a.band);
    put<std::uint8_t>(out, static_cast<std::uint8_t>(a.engine));
    put<double>(out, a.enter_us);
    put<double>(out, a.exit_us);
  }
  put<std::uint32_t>(out, static_cast<std::uint32_t>(st.levels.size()));
  for (const LevelTime& lt : st.levels) {
    put_str(out, lt.level);
    put<double>(out, lt.us);
    put<std::uint64_t>(out, lt.calls);
  }
  put<std::uint32_t>(out,
                     static_cast<std::uint32_t>(st.decision_tail.size()));
  for (const DispatchDecision& d : st.decision_tail) {
    put<std::uint64_t>(out, d.seq);
    put<std::uint8_t>(out, static_cast<std::uint8_t>(d.op));
    put<std::uint64_t>(out, d.bytes);
    put<std::uint8_t>(out, static_cast<std::uint8_t>(d.mode));
    put<std::uint64_t>(out, d.breakpoint);
    put<std::uint8_t>(out, static_cast<std::uint8_t>(d.table_choice));
    put<std::uint8_t>(out, static_cast<std::uint8_t>(d.engine));
    put<std::uint8_t>(out, static_cast<std::uint8_t>(d.reason));
    put<std::uint8_t>(out, d.fell_back ? 1 : 0);
    put<std::uint8_t>(out, d.composed ? 1 : 0);
    put_str(out, d.level_path);
    put<double>(out, d.time_us);
    put<std::uint8_t>(out, static_cast<std::uint8_t>(d.tune));
  }
  return out;
}

RankState deserialize(std::string_view blob) {
  Reader r{blob};
  require(r.get<std::uint32_t>() == kMagic, "fleet: bad blob magic");
  RankState st;
  st.rank = r.get<std::int32_t>();
  st.heartbeat.enter_seq = r.get<std::uint64_t>();
  st.heartbeat.done_seq = r.get<std::uint64_t>();
  st.heartbeat.in_flight = r.get<std::uint8_t>() != 0;
  st.heartbeat.op = op_from_u8(r.get<std::uint8_t>());
  st.heartbeat.engine = engine_from_u8(r.get<std::uint8_t>());
  st.heartbeat.bytes = r.get<std::uint64_t>();
  st.heartbeat.plan_id = r.get<std::uint64_t>();
  st.heartbeat.age_ms = r.get<double>();
  const auto n_arrivals = r.get<std::uint32_t>();
  st.arrivals.reserve(n_arrivals);
  for (std::uint32_t i = 0; i < n_arrivals; ++i) {
    Arrival a;
    a.seq = r.get<std::uint64_t>();
    a.op = op_from_u8(r.get<std::uint8_t>());
    a.band = r.get<std::uint8_t>();
    a.engine = engine_from_u8(r.get<std::uint8_t>());
    a.enter_us = r.get<double>();
    a.exit_us = r.get<double>();
    st.arrivals.push_back(a);
  }
  const auto n_levels = r.get<std::uint32_t>();
  st.levels.reserve(n_levels);
  for (std::uint32_t i = 0; i < n_levels; ++i) {
    LevelTime lt;
    lt.level = r.get_str();
    lt.us = r.get<double>();
    lt.calls = r.get<std::uint64_t>();
    st.levels.push_back(std::move(lt));
  }
  const auto n_decisions = r.get<std::uint32_t>();
  st.decision_tail.reserve(n_decisions);
  for (std::uint32_t i = 0; i < n_decisions; ++i) {
    DispatchDecision d;
    d.seq = r.get<std::uint64_t>();
    d.rank = st.rank;
    d.op = op_from_u8(r.get<std::uint8_t>());
    d.bytes = r.get<std::uint64_t>();
    d.mode = static_cast<core::Mode>(r.get<std::uint8_t>());
    d.breakpoint = r.get<std::uint64_t>();
    d.table_choice = engine_from_u8(r.get<std::uint8_t>());
    d.engine = engine_from_u8(r.get<std::uint8_t>());
    d.reason = static_cast<FallbackReason>(r.get<std::uint8_t>());
    d.fell_back = r.get<std::uint8_t>() != 0;
    d.composed = r.get<std::uint8_t>() != 0;
    d.level_path = r.get_str();
    d.time_us = r.get<double>();
    d.tune = static_cast<TuneAudit>(r.get<std::uint8_t>());
    st.decision_tail.push_back(std::move(d));
  }
  require(r.pos == blob.size(), "fleet: trailing bytes in blob");
  return st;
}

// ---- Fleet-wide reduction ---------------------------------------------------

FleetSnapshot assemble(std::vector<RankState> ranks, std::string profile,
                       std::string topology) {
  FleetSnapshot snap;
  snap.profile = std::move(profile);
  snap.topology = std::move(topology);
  std::sort(ranks.begin(), ranks.end(),
            [](const RankState& a, const RankState& b) {
              return a.rank < b.rank;
            });
  snap.world_size = static_cast<int>(ranks.size());

  // Rank-merged dispatch-latency distribution (the histogram-merge path).
  for (const RankState& st : ranks) {
    Histogram h;
    for (const Arrival& a : st.arrivals) {
      if (a.exit_us >= 0.0) h.observe(a.exit_us - a.enter_us);
    }
    snap.fleet_latency_us =
        merge_histograms(snap.fleet_latency_us, h.snapshot());
  }

  // Join rounds by per-rank dispatch seq: uniform collectives are issued in
  // the same order on every rank, so seq k is round k. Only rounds present
  // (and completed) on every rank with a matching (op, band) count.
  struct CellAcc {
    Histogram skew;
    double sum_skew = 0.0;
    double sum_dur = 0.0;
    std::uint64_t rounds = 0;
    std::map<int, std::uint64_t> last_counts;
  };
  std::map<std::pair<std::uint8_t, std::uint8_t>, CellAcc> cells;
  std::map<int, double> lateness;
  std::map<int, std::uint64_t> times_last;

  if (ranks.size() >= 2) {
    std::vector<std::unordered_map<std::uint64_t, const Arrival*>> by_seq;
    by_seq.reserve(ranks.size());
    for (const RankState& st : ranks) {
      auto& m = by_seq.emplace_back();
      for (const Arrival& a : st.arrivals) m.emplace(a.seq, &a);
    }
    for (const Arrival& a0 : ranks.front().arrivals) {
      if (a0.exit_us < 0.0) continue;
      std::vector<const Arrival*> round{&a0};
      bool full = true;
      for (std::size_t r = 1; r < ranks.size(); ++r) {
        const auto it = by_seq[r].find(a0.seq);
        if (it == by_seq[r].end() || it->second->exit_us < 0.0 ||
            it->second->op != a0.op || it->second->band != a0.band) {
          full = false;
          break;
        }
        round.push_back(it->second);
      }
      if (!full) continue;
      double min_enter = round.front()->enter_us;
      double max_enter = round.front()->enter_us;
      double sum_dur = 0.0;
      std::size_t last_idx = 0;
      for (std::size_t r = 0; r < round.size(); ++r) {
        const Arrival& a = *round[r];
        min_enter = std::min(min_enter, a.enter_us);
        if (a.enter_us > max_enter) {
          max_enter = a.enter_us;
          last_idx = r;
        }
        sum_dur += a.exit_us - a.enter_us;
      }
      const double skew = max_enter - min_enter;
      const int last_rank = ranks[last_idx].rank;
      CellAcc& cell = cells[{static_cast<std::uint8_t>(a0.op), a0.band}];
      cell.skew.observe(skew);
      cell.sum_skew += skew;
      cell.sum_dur += sum_dur / static_cast<double>(round.size());
      ++cell.rounds;
      // Sub-nanosecond spread is float noise from the virtual clocks, not a
      // straggler; charging it would put every healthy fleet's rank 0 on
      // the board with a 100% share of nothing.
      constexpr double kNoiseFloorUs = 1e-3;
      if (skew > kNoiseFloorUs) {
        ++cell.last_counts[last_rank];
        ++times_last[last_rank];
        for (std::size_t r = 0; r < round.size(); ++r) {
          const double late = round[r]->enter_us - min_enter;
          if (late > kNoiseFloorUs) lateness[ranks[r].rank] += late;
        }
      }
    }
  }

  for (const auto& [key, acc] : cells) {
    SkewCell cell;
    cell.op = op_from_u8(key.first);
    cell.band = key.second;
    cell.rounds = acc.rounds;
    cell.skew_us = acc.skew.snapshot();
    cell.mean_skew_us =
        acc.rounds == 0 ? 0.0 : acc.sum_skew / static_cast<double>(acc.rounds);
    cell.mean_duration_us =
        acc.rounds == 0 ? 0.0 : acc.sum_dur / static_cast<double>(acc.rounds);
    cell.imbalance = cell.mean_duration_us > 0.0
                         ? cell.mean_skew_us / cell.mean_duration_us
                         : 0.0;
    for (const auto& [rank, n] : acc.last_counts) {
      if (n > cell.worst_count) {
        cell.worst_count = n;
        cell.worst_rank = rank;
      }
    }
    snap.skew.push_back(std::move(cell));
  }

  // Hier levels: a slow rank inflates its peers' stage time at the levels
  // that wait on it, so rank the levels by cross-rank spread.
  std::map<std::string, std::vector<std::pair<int, double>>> level_us;
  for (const RankState& st : ranks) {
    for (const LevelTime& lt : st.levels) {
      level_us[lt.level].emplace_back(st.rank, lt.us);
    }
  }
  for (const auto& [level, per_rank] : level_us) {
    LevelRow row;
    row.level = level;
    double sum = 0.0;
    double mn = per_rank.front().second;
    double mx = per_rank.front().second;
    for (const auto& [rank, us] : per_rank) {
      sum += us;
      mn = std::min(mn, us);
      if (us >= mx) {
        mx = us;
        row.max_rank = rank;
      }
    }
    row.mean_us = sum / static_cast<double>(per_rank.size());
    row.spread_us = per_rank.size() >= 2 ? mx - mn : 0.0;
    snap.levels.push_back(std::move(row));
  }
  std::sort(snap.levels.begin(), snap.levels.end(),
            [](const LevelRow& a, const LevelRow& b) {
              return a.spread_us > b.spread_us;
            });

  double total_lateness = 0.0;
  for (const auto& [rank, us] : lateness) total_lateness += us;
  for (const auto& [rank, us] : lateness) {
    if (us <= 0.0 && times_last[rank] == 0) continue;
    StragglerRow row;
    row.rank = rank;
    row.times_last = times_last[rank];
    row.lateness_us = us;
    row.share = total_lateness > 0.0 ? us / total_lateness : 0.0;
    if (!snap.levels.empty() && snap.levels.front().spread_us > 0.0) {
      row.level = snap.levels.front().level;
      row.level_spread_us = snap.levels.front().spread_us;
    }
    snap.stragglers.push_back(std::move(row));
  }
  std::sort(snap.stragglers.begin(), snap.stragglers.end(),
            [](const StragglerRow& a, const StragglerRow& b) {
              return a.lateness_us > b.lateness_us;
            });

  snap.ranks = std::move(ranks);
  return snap;
}

std::string FleetSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"schema\":\"mpixccl.fleet.v1\",\"meta\":{\"world_size\":"
     << world_size << ",\"profile\":\"" << json_escape(profile)
     << "\",\"topology\":\"" << json_escape(topology) << "\"},\"ranks\":[";
  bool first = true;
  for (const RankState& st : ranks) {
    if (!first) os << ',';
    first = false;
    const HeartbeatView& hb = st.heartbeat;
    os << "{\"rank\":" << st.rank << ",\"dispatches\":" << hb.done_seq
       << ",\"heartbeat\":{\"enter_seq\":" << hb.enter_seq
       << ",\"done_seq\":" << hb.done_seq << ",\"in_flight\":"
       << (hb.in_flight ? "true" : "false") << ",\"op\":\""
       << to_string(hb.op) << "\",\"engine\":\"" << to_string(hb.engine)
       << "\",\"bytes\":" << hb.bytes << ",\"plan\":" << hb.plan_id
       << ",\"age_ms\":" << num(hb.age_ms) << '}';
    Histogram lat;
    for (const Arrival& a : st.arrivals) {
      if (a.exit_us >= 0.0) lat.observe(a.exit_us - a.enter_us);
    }
    os << ",\"latency_us\":" << hist_to_json(lat.snapshot());
    os << ",\"levels\":[";
    bool fl = true;
    for (const LevelTime& lt : st.levels) {
      if (!fl) os << ',';
      fl = false;
      os << "{\"level\":\"" << json_escape(lt.level) << "\",\"us\":"
         << num(lt.us) << ",\"calls\":" << lt.calls << '}';
    }
    os << "],\"decision_tail\":[";
    bool fd = true;
    for (const DispatchDecision& d : st.decision_tail) {
      if (!fd) os << ',';
      fd = false;
      os << "{\"seq\":" << d.seq << ",\"op\":\"" << to_string(d.op)
         << "\",\"bytes\":" << d.bytes << ",\"engine\":\""
         << to_string(d.engine) << "\",\"reason\":\"" << to_string(d.reason)
         << "\",\"fell_back\":" << (d.fell_back ? "true" : "false")
         << ",\"level_path\":\"" << json_escape(d.level_path)
         << "\",\"time_us\":" << num(d.time_us) << '}';
    }
    os << "]}";
  }
  os << "],\"latency_us\":" << hist_to_json(fleet_latency_us) << ",\"skew\":[";
  first = true;
  for (const SkewCell& c : skew) {
    if (!first) os << ',';
    first = false;
    os << "{\"op\":\"" << to_string(c.op) << "\",\"band\":\""
       << size_band_name(c.band) << "\",\"rounds\":" << c.rounds
       << ",\"mean_skew_us\":" << num(c.mean_skew_us)
       << ",\"mean_duration_us\":" << num(c.mean_duration_us)
       << ",\"imbalance\":" << num(c.imbalance)
       << ",\"worst_rank\":" << c.worst_rank
       << ",\"worst_count\":" << c.worst_count
       << ",\"skew_us\":" << hist_to_json(c.skew_us) << '}';
  }
  os << "],\"levels\":[";
  first = true;
  for (const LevelRow& l : levels) {
    if (!first) os << ',';
    first = false;
    os << "{\"level\":\"" << json_escape(l.level) << "\",\"mean_us\":"
       << num(l.mean_us) << ",\"spread_us\":" << num(l.spread_us)
       << ",\"max_rank\":" << l.max_rank << '}';
  }
  os << "],\"stragglers\":[";
  first = true;
  for (const StragglerRow& s : stragglers) {
    if (!first) os << ',';
    first = false;
    os << "{\"rank\":" << s.rank << ",\"times_last\":" << s.times_last
       << ",\"lateness_us\":" << num(s.lateness_us) << ",\"share\":"
       << num(s.share) << ",\"level\":\"" << json_escape(s.level)
       << "\",\"level_spread_us\":" << num(s.level_spread_us) << '}';
  }
  os << "]}";
  return os.str();
}

std::string FleetSnapshot::report() const {
  std::ostringstream os;
  char line[200];
  os << "fleet health: world=" << world_size << " profile=" << profile
     << " topology=" << (topology.empty() ? "(flat)" : topology) << '\n';
  if (fleet_latency_us.count > 0) {
    os << "dispatch latency (all ranks merged): n=" << fleet_latency_us.count
       << " p50=" << num(fleet_latency_us.p50())
       << "us p90=" << num(fleet_latency_us.p90())
       << "us p99=" << num(fleet_latency_us.p99()) << "us\n";
  }
  os << "arrival skew per (collective, band):\n";
  std::snprintf(line, sizeof(line), "  %-14s %-8s %7s %14s %14s %10s %6s\n",
                "op", "band", "rounds", "mean-skew-us", "mean-dur-us",
                "imbalance", "worst");
  os << line;
  if (skew.empty()) os << "  (no seq-aligned rounds profiled)\n";
  for (const SkewCell& c : skew) {
    const std::string worst =
        c.worst_rank < 0 ? "-" : "r" + std::to_string(c.worst_rank);
    std::snprintf(line, sizeof(line),
                  "  %-14s %-8s %7llu %14s %14s %10s %-6s\n",
                  std::string(to_string(c.op)).c_str(),
                  std::string(size_band_name(c.band)).c_str(),
                  static_cast<unsigned long long>(c.rounds),
                  num(c.mean_skew_us).c_str(), num(c.mean_duration_us).c_str(),
                  num(c.imbalance).c_str(), worst.c_str());
    os << line;
  }
  os << "straggler board (by lateness):\n";
  std::snprintf(line, sizeof(line), "  %-5s %12s %14s %7s %s\n", "rank",
                "times-last", "lateness-us", "share", "skew-level");
  os << line;
  if (stragglers.empty()) os << "  (no stragglers: arrivals are balanced)\n";
  for (const StragglerRow& s : stragglers) {
    std::snprintf(line, sizeof(line), "  r%-4d %12llu %14s %6.1f%% %s\n",
                  s.rank, static_cast<unsigned long long>(s.times_last),
                  num(s.lateness_us).c_str(), 100.0 * s.share,
                  s.level.empty()
                      ? "-"
                      : (s.level + " (spread " + num(s.level_spread_us) + "us)")
                            .c_str());
    os << line;
  }
  if (!levels.empty()) {
    os << "hier levels by cross-rank stage-time spread:\n";
    std::snprintf(line, sizeof(line), "  %-12s %12s %12s %6s\n", "level",
                  "mean-us", "spread-us", "max");
    os << line;
    for (const LevelRow& l : levels) {
      std::snprintf(line, sizeof(line), "  %-12s %12s %12s r%-5d\n",
                    l.level.c_str(), num(l.mean_us).c_str(),
                    num(l.spread_us).c_str(), l.max_rank);
      os << line;
    }
  }
  os << "per-rank heartbeats:\n";
  std::snprintf(line, sizeof(line), "  %-5s %10s %9s %-14s %-5s %6s %10s\n",
                "rank", "dispatches", "in-flight", "last-op", "eng", "plan",
                "age-ms");
  os << line;
  for (const RankState& st : ranks) {
    const HeartbeatView& hb = st.heartbeat;
    std::snprintf(line, sizeof(line),
                  "  r%-4d %10llu %9s %-14s %-5s %6llu %10s\n", st.rank,
                  static_cast<unsigned long long>(hb.done_seq),
                  hb.in_flight ? "yes" : "no",
                  std::string(to_string(hb.op)).c_str(),
                  std::string(to_string(hb.engine)).c_str(),
                  static_cast<unsigned long long>(hb.plan_id),
                  num(hb.age_ms).c_str());
    os << line;
  }
  return os.str();
}

// ---- Watchdog ---------------------------------------------------------------

namespace {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != v && *end == '\0') ? parsed : fallback;
}

struct WatchdogState {
  std::mutex mu;
  std::condition_variable cv;
  std::thread th;
  bool stop = false;
  WatchdogConfig cfg;
  std::function<void(const HangReport&)> cb;
  std::string last_report;
  std::atomic<std::uint64_t> fires{0};
  std::atomic<bool> running{false};
  int last_fired_rank = -1;
  std::uint64_t last_fired_seq = 0;

  // An env-armed watchdog (MPIXCCL_WATCHDOG_TIMEOUT_MS) has no natural
  // stop() call site, so the monitor thread must be joined here or the
  // process terminates on a joinable thread at static destruction.
  ~WatchdogState() {
    {
      std::lock_guard lock(mu);
      stop = true;
    }
    cv.notify_all();
    if (th.joinable()) th.join();
  }
};

WatchdogState& wd() {
  static WatchdogState s;
  return s;
}

/// One monitor pass: find hung ranks, blame the least-progressed one, and
/// build the dump. Returns false when nothing (new) is hung.
bool check_once(const WatchdogConfig& cfg, HangReport& out) {
  WatchdogState& s = wd();
  const std::int64_t now = steady_ns();
  bool any_hung = false;
  int blame = -1;
  std::uint64_t blame_enter = 0;
  std::int64_t blame_beat = 0;
  bool blame_in_flight = true;
  std::vector<int> active;
  for (int r = 0; r < kMaxRanks; ++r) {
    Slot& sl = slot(r);
    const std::uint64_t enter = sl.enter_seq.load(std::memory_order_relaxed);
    if (enter == 0) continue;
    active.push_back(r);
    const std::int64_t beat = sl.beat_ns.load(std::memory_order_relaxed);
    const bool in_flight = sl.in_flight.load(std::memory_order_relaxed) != 0;
    const double age_ms = static_cast<double>(now - beat) / 1e6;
    if (in_flight && age_ms > cfg.timeout_ms) any_hung = true;
    // Blame the least-progressed rank; prefer one not in a dispatch at all
    // (it never arrived), then the stalest beat.
    if (blame < 0 || enter < blame_enter ||
        (enter == blame_enter && !in_flight && blame_in_flight) ||
        (enter == blame_enter && in_flight == blame_in_flight &&
         beat < blame_beat)) {
      blame = r;
      blame_enter = enter;
      blame_beat = beat;
      blame_in_flight = in_flight;
    }
  }
  if (!any_hung || blame < 0) return false;
  {
    std::lock_guard lock(s.mu);
    if (blame == s.last_fired_rank && blame_enter == s.last_fired_seq) {
      return false;  // already reported this exact hang
    }
    s.last_fired_rank = blame;
    s.last_fired_seq = blame_enter;
  }

  out.rank = blame;
  out.enter_seq = blame_enter;
  out.stalled_ms = static_cast<double>(now - blame_beat) / 1e6;

  std::ostringstream os;
  os << "hang detected: rank " << blame << " has "
     << (blame_in_flight
             ? "been inside collective #" + std::to_string(blame_enter)
             : "not arrived at collective #" + std::to_string(blame_enter + 1))
     << " for " << num(out.stalled_ms) << " ms (timeout "
     << num(cfg.timeout_ms) << " ms)\n";
  os << "per-rank heartbeats:\n";
  for (const int r : active) {
    Slot& sl = slot(r);
    const double age =
        static_cast<double>(now - sl.beat_ns.load(std::memory_order_relaxed)) /
        1e6;
    char line[200];
    std::snprintf(
        line, sizeof(line),
        "  r%-4d entered=%llu done=%llu in_flight=%s op=%s engine=%s "
        "bytes=%llu plan=%llu age_ms=%s%s\n",
        r,
        static_cast<unsigned long long>(
            sl.enter_seq.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            sl.done_seq.load(std::memory_order_relaxed)),
        sl.in_flight.load(std::memory_order_relaxed) != 0 ? "yes" : "no",
        std::string(
            to_string(op_from_u8(sl.op.load(std::memory_order_relaxed))))
            .c_str(),
        std::string(to_string(
                        engine_from_u8(sl.engine.load(std::memory_order_relaxed))))
            .c_str(),
        static_cast<unsigned long long>(
            sl.bytes.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            sl.plan.load(std::memory_order_relaxed)),
        num(age).c_str(), r == blame ? "   <-- stalled" : "");
    os << line;
  }
  os << "in-flight plan for rank " << blame << ": ";
  const std::uint64_t plan = slot(blame).plan.load(std::memory_order_relaxed);
  if (plan != 0) {
    os << "plan #" << plan << '\n';
  } else {
    os << "(no cached plan: composed or uncached dispatch)\n";
  }
  os << "decision-ring tail for rank " << blame << ":\n";
  bool any_decision = false;
  std::vector<DispatchDecision> tail;
  for (const DispatchDecision& d : DecisionLog::instance().records()) {
    if (d.rank != blame || d.tune != TuneAudit::None) continue;
    tail.push_back(d);
  }
  const std::size_t keep = 8;
  const std::size_t start = tail.size() > keep ? tail.size() - keep : 0;
  for (std::size_t i = start; i < tail.size(); ++i) {
    os << "  " << to_line(tail[i]) << '\n';
    if (!tail[i].level_path.empty()) {
      os << "    [hier levels: " << tail[i].level_path << "]\n";
    }
    any_decision = true;
  }
  if (!any_decision) {
    os << "  (no decisions recorded for this rank)\n";
  }
  out.text = os.str();
  return true;
}

void watchdog_loop() {
  WatchdogState& s = wd();
  WatchdogConfig cfg;
  {
    std::lock_guard lock(s.mu);
    cfg = s.cfg;
  }
  const auto poll =
      std::chrono::duration<double, std::milli>(cfg.poll_ms);
  for (;;) {
    {
      std::unique_lock lock(s.mu);
      if (s.cv.wait_for(lock, poll, [&s] { return s.stop; })) return;
    }
    HangReport report;
    if (!check_once(cfg, report)) continue;
    std::function<void(const HangReport&)> cb;
    {
      std::lock_guard lock(s.mu);
      s.last_report = report.text;
      cb = s.cb;
    }
    s.fires.fetch_add(1, std::memory_order_relaxed);
    if (cb) {
      cb(report);
    } else {
      MPIXCCL_LOG_WARN("watchdog", report.text);
    }
    if (cfg.abort_on_hang) {
      MPIXCCL_LOG_ERROR("watchdog", "aborting on hang (MPIXCCL_WATCHDOG_ABORT)");
      std::abort();
    }
  }
}

}  // namespace

WatchdogConfig WatchdogConfig::from_env() {
  WatchdogConfig cfg;
  cfg.timeout_ms = env_double("MPIXCCL_WATCHDOG_TIMEOUT_MS", 0.0);
  cfg.poll_ms = env_double("MPIXCCL_WATCHDOG_POLL_MS", 0.0);
  const char* abort_env = std::getenv("MPIXCCL_WATCHDOG_ABORT");
  cfg.abort_on_hang =
      abort_env != nullptr && std::string_view(abort_env) == "1";
  return cfg;
}

Watchdog& Watchdog::instance() {
  static Watchdog w;
  return w;
}

void Watchdog::start(const WatchdogConfig& cfg) {
  if (cfg.timeout_ms <= 0.0) return;
  WatchdogState& s = wd();
  {
    std::lock_guard lock(s.mu);
    if (s.running.load(std::memory_order_relaxed)) return;
    s.cfg = cfg;
    if (s.cfg.poll_ms <= 0.0) {
      s.cfg.poll_ms = std::clamp(cfg.timeout_ms / 4.0, 1.0, 250.0);
    }
    s.stop = false;
    s.last_fired_rank = -1;
    s.last_fired_seq = 0;
    s.running.store(true, std::memory_order_relaxed);
  }
  // The dump joins the decision ring; without decisions there is nothing to
  // show, so arming the watchdog arms the ring too.
  DecisionLog::instance().set_enabled(true);
  {
    std::lock_guard lock(g_activation_mu);
    g_watchdog_running = true;
    refresh_mask_locked();
  }
  s.th = std::thread(watchdog_loop);
}

void Watchdog::stop() {
  WatchdogState& s = wd();
  {
    std::lock_guard lock(s.mu);
    if (!s.running.load(std::memory_order_relaxed)) return;
    s.stop = true;
  }
  s.cv.notify_all();
  if (s.th.joinable()) s.th.join();
  {
    std::lock_guard lock(s.mu);
    s.running.store(false, std::memory_order_relaxed);
  }
  std::lock_guard lock(g_activation_mu);
  g_watchdog_running = false;
  refresh_mask_locked();
}

bool Watchdog::running() const {
  return wd().running.load(std::memory_order_relaxed);
}

std::uint64_t Watchdog::fires() const {
  return wd().fires.load(std::memory_order_relaxed);
}

std::string Watchdog::last_report() const {
  WatchdogState& s = wd();
  std::lock_guard lock(s.mu);
  return s.last_report;
}

void Watchdog::set_on_hang(std::function<void(const HangReport&)> cb) {
  WatchdogState& s = wd();
  std::lock_guard lock(s.mu);
  s.cb = std::move(cb);
}

}  // namespace mpixccl::obs::fleet
