#pragma once
// Abstract CCL backend interface — the per-rank handle to one simulated
// vendor library (NCCL / RCCL / HCCL / MSCCL).
//
// Semantics mirror the real libraries:
//  * Every operation is asynchronous with respect to the caller: the call
//    charges only the launch overhead to the rank's clock; the communication
//    work lands on the supplied Stream and is observed at stream sync.
//  * Send/Recv must be enclosed in group_start()/group_end() when a rank
//    both sends and receives in one logical step (Listing 1 of the paper);
//    grouped operations execute concurrently at group_end.
//  * Datatype/op support differs per vendor (Capabilities); unsupported
//    arguments return UnsupportedDatatype/UnsupportedOperation *before*
//    touching any buffer, which the MPI-xCCL layer turns into a fallback.

#include <cstddef>
#include <memory>

#include "device/stream.hpp"
#include "fabric/world.hpp"
#include "sim/profiles.hpp"
#include "xccl/api.hpp"

namespace mpixccl::xccl {

class CclBackend {
 public:
  explicit CclBackend(fabric::RankContext& ctx) : ctx_(&ctx) {}
  virtual ~CclBackend() = default;

  CclBackend(const CclBackend&) = delete;
  CclBackend& operator=(const CclBackend&) = delete;

  [[nodiscard]] virtual CclKind kind() const = 0;
  [[nodiscard]] virtual const Capabilities& capabilities() const = 0;
  [[nodiscard]] std::string_view name() const { return to_string(kind()); }

  /// Join communicator `id` as `rank` of `nranks`; `world_ranks` maps comm
  /// ranks to fabric ranks (identity when empty). Collective across members.
  virtual XcclResult comm_init_rank(CclComm& comm, int nranks, const UniqueId& id,
                                    int rank, std::vector<int> world_ranks = {});

  // ---- Built-in collectives (Sec. 3.2) -----------------------------------
  virtual XcclResult all_reduce(const void* sendbuf, void* recvbuf,
                                std::size_t count, DataType dt, ReduceOp op,
                                CclComm& comm, device::Stream& stream) = 0;
  virtual XcclResult broadcast(void* buf, std::size_t count, DataType dt, int root,
                               CclComm& comm, device::Stream& stream) = 0;
  virtual XcclResult reduce(const void* sendbuf, void* recvbuf, std::size_t count,
                            DataType dt, ReduceOp op, int root, CclComm& comm,
                            device::Stream& stream) = 0;
  virtual XcclResult all_gather(const void* sendbuf, void* recvbuf,
                                std::size_t sendcount, DataType dt, CclComm& comm,
                                device::Stream& stream) = 0;
  virtual XcclResult reduce_scatter(const void* sendbuf, void* recvbuf,
                                    std::size_t recvcount, DataType dt, ReduceOp op,
                                    CclComm& comm, device::Stream& stream) = 0;

  // ---- Point-to-point (Sec. 3.3 building blocks) --------------------------
  virtual XcclResult send(const void* buf, std::size_t count, DataType dt, int peer,
                          CclComm& comm, device::Stream& stream) = 0;
  virtual XcclResult recv(void* buf, std::size_t count, DataType dt, int peer,
                          CclComm& comm, device::Stream& stream) = 0;

  // ---- Group calls ---------------------------------------------------------
  virtual XcclResult group_start() = 0;
  virtual XcclResult group_end() = 0;

 protected:
  [[nodiscard]] fabric::RankContext& ctx() { return *ctx_; }
  static void set_comm(CclComm& comm, int rank, std::vector<int> world_ranks,
                       fabric::ChannelId base) {
    comm.rank_ = rank;
    comm.world_ranks_ = std::move(world_ranks);
    comm.base_channel_ = base;
    comm.op_seq_ = 0;
  }

 private:
  fabric::RankContext* ctx_;
};

/// Create the backend emulating `kind` for this rank, priced by `profile`.
std::unique_ptr<CclBackend> make_backend(CclKind kind, fabric::RankContext& ctx,
                                         const sim::CclProfile& profile);

/// The native CCL kind for an accelerator vendor.
constexpr CclKind native_ccl(Vendor v) {
  switch (v) {
    case Vendor::Nvidia: return CclKind::Nccl;
    case Vendor::Amd: return CclKind::Rccl;
    case Vendor::Habana: return CclKind::Hccl;
    case Vendor::Intel: return CclKind::OneCcl;
    case Vendor::Host: return CclKind::Nccl;  // unused; MPI path handles host
  }
  return CclKind::Nccl;
}

}  // namespace mpixccl::xccl
