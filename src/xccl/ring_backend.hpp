#pragma once
// Shared implementation of the NCCL-family backends.
//
// NCCL, RCCL and HCCL behave identically at the algorithm level (ring
// collectives for bandwidth, binomial trees for latency) and differ in
// capability tables and cost profiles, so one RingCclBackend implements the
// mechanics and the concrete backends parameterize it.
//
// Virtual-time semantics per operation:
//   1. the launch overhead is charged to the rank's clock (CPU side);
//   2. the algorithm starts at max(stream tail, clock) — streams serialize;
//   3. each algorithm step is a fabric exchange whose completion couples the
//      participating ranks' timelines;
//   4. the final completion advances the stream tail; the caller observes it
//      at stream synchronization, exactly like a real CCL kernel.

#include <cstddef>
#include <vector>

#include "xccl/backend.hpp"

namespace mpixccl::xccl {

class RingCclBackend : public CclBackend {
 public:
  RingCclBackend(CclKind kind, fabric::RankContext& ctx,
                 const sim::CclProfile& profile, Capabilities caps)
      : CclBackend(ctx), kind_(kind), prof_(profile), caps_(std::move(caps)) {}

  [[nodiscard]] CclKind kind() const override { return kind_; }
  [[nodiscard]] const Capabilities& capabilities() const override { return caps_; }
  [[nodiscard]] const sim::CclProfile& profile() const { return prof_; }

  XcclResult all_reduce(const void* sendbuf, void* recvbuf, std::size_t count,
                        DataType dt, ReduceOp op, CclComm& comm,
                        device::Stream& stream) override;
  XcclResult broadcast(void* buf, std::size_t count, DataType dt, int root,
                       CclComm& comm, device::Stream& stream) override;
  XcclResult reduce(const void* sendbuf, void* recvbuf, std::size_t count,
                    DataType dt, ReduceOp op, int root, CclComm& comm,
                    device::Stream& stream) override;
  XcclResult all_gather(const void* sendbuf, void* recvbuf, std::size_t sendcount,
                        DataType dt, CclComm& comm, device::Stream& stream) override;
  XcclResult reduce_scatter(const void* sendbuf, void* recvbuf,
                            std::size_t recvcount, DataType dt, ReduceOp op,
                            CclComm& comm, device::Stream& stream) override;
  XcclResult send(const void* buf, std::size_t count, DataType dt, int peer,
                  CclComm& comm, device::Stream& stream) override;
  XcclResult recv(void* buf, std::size_t count, DataType dt, int peer,
                  CclComm& comm, device::Stream& stream) override;
  XcclResult group_start() override;
  XcclResult group_end() override;

 protected:
  // ---- validation ---------------------------------------------------------
  [[nodiscard]] XcclResult check_move(DataType dt) const;
  [[nodiscard]] XcclResult check_reduce(DataType dt, ReduceOp op) const;

  // ---- cost helpers -------------------------------------------------------
  /// Effective p2p link to a peer world rank.
  [[nodiscard]] const sim::LinkParams& link(int peer_world) const;
  /// Per-step cost of a pipelined ring hop carrying `bytes`.
  [[nodiscard]] double ring_hop_cost(int src_world, std::size_t bytes) const;
  /// Per-hop cost of the small-message tree path.
  [[nodiscard]] double tree_hop_cost(int src_world, std::size_t bytes) const;
  /// Full p2p message cost (send/recv API). `concurrent` incoming transfers
  /// share the link; `bidirectional` applies the duplex-efficiency factor.
  [[nodiscard]] double p2p_cost(int src_world, std::size_t bytes,
                                std::size_t concurrent,
                                bool bidirectional = false) const;
  /// Extra latency from vendor quirk tables (HCCL step curves) for an op
  /// touching `bytes` on a communicator spanning multiple nodes.
  [[nodiscard]] double quirk_extra(const CclComm& comm, std::size_t bytes) const;

  /// Launch the op: charge launch overhead, return the stream-serialized
  /// start time.
  sim::TimeUs begin_op(device::Stream& stream);

  // ---- fabric step: symmetric exchange with one peer ----------------------
  /// Send `sbytes` from sbuf to `dst`, receive `rbytes` into rbuf from
  /// `src` (comm ranks), with per-step cost `cost_us(bytes)` based on the
  /// hop kind. Returns the new local time.
  sim::TimeUs step_exchange(CclComm& comm, fabric::ChannelId ch, int tag, int dst,
                            const void* sbuf, std::size_t sbytes, int src,
                            void* rbuf, std::size_t rbytes, sim::TimeUs ready,
                            bool tree_hop);

 private:
  struct QueuedP2p {
    bool is_send;
    const void* sbuf;
    void* rbuf;
    std::size_t bytes;
    int peer_world;
    CclComm* comm;
    device::Stream* stream;
  };

  // Algorithm bodies (correctness + timing).
  sim::TimeUs allreduce_tree(const void* sendbuf, void* recvbuf, std::size_t count,
                             DataType dt, ReduceOp op, CclComm& comm,
                             fabric::ChannelId ch, sim::TimeUs t0);
  sim::TimeUs allreduce_ring(const void* sendbuf, void* recvbuf, std::size_t count,
                             DataType dt, ReduceOp op, CclComm& comm,
                             fabric::ChannelId ch, sim::TimeUs t0);
  sim::TimeUs bcast_tree(void* buf, std::size_t bytes, int root, CclComm& comm,
                         fabric::ChannelId ch, sim::TimeUs t0);
  sim::TimeUs bcast_ring(void* buf, std::size_t bytes, int root, CclComm& comm,
                         fabric::ChannelId ch, sim::TimeUs t0);
  sim::TimeUs reduce_tree(const void* sendbuf, void* recvbuf, std::size_t count,
                          DataType dt, ReduceOp op, int root, CclComm& comm,
                          fabric::ChannelId ch, sim::TimeUs t0);
  sim::TimeUs ring_reduce_scatter(const void* sendbuf, void* scratch,
                                  std::size_t block_count, DataType dt, ReduceOp op,
                                  CclComm& comm, fabric::ChannelId ch,
                                  sim::TimeUs t0);

  CclKind kind_;
  sim::CclProfile prof_;
  Capabilities caps_;
  int group_depth_ = 0;
  std::vector<QueuedP2p> group_queue_;
};

}  // namespace mpixccl::xccl
