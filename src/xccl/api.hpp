#pragma once
// Common API surface of the simulated vendor collective-communication
// libraries (xCCLs). Mirrors the NCCL API shape the paper builds on: opaque
// unique ids for bootstrap, communicators over a rank group, group calls,
// five built-in collectives, and point-to-point send/recv.

#include <array>
#include <cstdint>
#include <set>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "fabric/message.hpp"

namespace mpixccl::xccl {

/// Which vendor library a backend emulates. OneCcl is the paper's stated
/// future work ("extend support to ... new vendor-specific libraries like
/// oneCCL"), implemented here as an extension.
enum class CclKind : std::uint8_t { Nccl, Rccl, Hccl, Msccl, OneCcl };

constexpr std::string_view to_string(CclKind k) {
  switch (k) {
    case CclKind::Nccl: return "nccl";
    case CclKind::Rccl: return "rccl";
    case CclKind::Hccl: return "hccl";
    case CclKind::Msccl: return "msccl";
    case CclKind::OneCcl: return "oneccl";
  }
  return "?";
}

/// The five built-in CCL collectives (Sec. 3.2 of the paper). Everything
/// else is composed from Send/Recv in the abstraction layer (Sec. 3.3).
enum class BuiltinColl : std::uint8_t {
  AllReduce,
  Broadcast,
  Reduce,
  AllGather,
  ReduceScatter,
};

constexpr std::string_view to_string(BuiltinColl c) {
  switch (c) {
    case BuiltinColl::AllReduce: return "allreduce";
    case BuiltinColl::Broadcast: return "broadcast";
    case BuiltinColl::Reduce: return "reduce";
    case BuiltinColl::AllGather: return "allgather";
    case BuiltinColl::ReduceScatter: return "reducescatter";
  }
  return "?";
}

/// Opaque bootstrap token (ncclUniqueId equivalent). Generated on one rank,
/// distributed out-of-band (via MPI in the abstraction layer), and used by
/// every rank to join the same communicator.
struct UniqueId {
  std::array<std::uint64_t, 2> bits{};

  friend bool operator==(const UniqueId&, const UniqueId&) = default;

  /// Deterministically derive a fresh id from a seed and sequence number.
  static UniqueId derive(std::uint64_t seed, std::uint64_t seq) {
    return UniqueId{{splitmix64(seed ^ 0xcc1dull), splitmix64(seq + 0x9e37ull)}};
  }

  [[nodiscard]] fabric::ChannelId channel() const {
    return splitmix64(bits[0] ^ splitmix64(bits[1]));
  }
};

/// What a backend supports; consulted by the abstraction layer to decide
/// between dispatching to the CCL and falling back to MPI.
struct Capabilities {
  std::set<DataType> movable;    ///< datatypes accepted by any operation
  std::set<DataType> reducible;  ///< datatypes accepted by reductions
  std::set<ReduceOp> ops;        ///< reduction operators

  [[nodiscard]] bool can_move(DataType dt) const { return movable.contains(dt); }
  [[nodiscard]] bool can_reduce(DataType dt, ReduceOp op) const {
    return reducible.contains(dt) && ops.contains(op);
  }
};

/// The NCCL-family capability set: all arithmetic types, no complex, no
/// logical/bitwise ops.
Capabilities nccl_family_capabilities();
/// HCCL: float32 only (the paper: "HCCL only supports float currently").
Capabilities hccl_capabilities();
/// oneCCL: NCCL-family minus bfloat16 reductions (contemporary coverage).
Capabilities oneccl_capabilities();

/// A CCL communicator: this rank's membership in a rank group. Created
/// collectively via CclBackend::comm_init_rank.
class CclComm {
 public:
  CclComm() = default;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int nranks() const { return static_cast<int>(world_ranks_.size()); }
  [[nodiscard]] int world_rank(int r) const {
    require(r >= 0 && r < nranks(), "CclComm: bad rank");
    return world_ranks_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] bool valid() const { return !world_ranks_.empty(); }

  /// Channel for the next collective operation (all ranks call collectives
  /// in the same order, so they derive identical channels).
  [[nodiscard]] fabric::ChannelId next_op_channel() {
    return fabric::derive_channel(base_channel_, ++op_seq_);
  }
  /// Channel for point-to-point traffic (grouped send/recv).
  [[nodiscard]] fabric::ChannelId p2p_channel() const {
    return fabric::derive_channel(base_channel_, 0);
  }

 private:
  friend class CclBackend;
  int rank_ = -1;
  std::vector<int> world_ranks_;
  fabric::ChannelId base_channel_ = 0;
  std::uint64_t op_seq_ = 0;
};

}  // namespace mpixccl::xccl
