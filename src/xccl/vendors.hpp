#pragma once
// Concrete vendor backends. NCCL, RCCL and HCCL are RingCclBackend
// parameterizations (capability table + cost profile); MSCCL adds the
// custom-algorithm interpreter (see msccl.hpp).

#include "xccl/ring_backend.hpp"

namespace mpixccl::xccl {

/// NVIDIA NCCL emulation.
class NcclBackend final : public RingCclBackend {
 public:
  NcclBackend(fabric::RankContext& ctx, const sim::CclProfile& profile)
      : RingCclBackend(CclKind::Nccl, ctx, profile, nccl_family_capabilities()) {}
};

/// AMD RCCL emulation (API-identical to NCCL; PCIe-class cost profile).
class RcclBackend final : public RingCclBackend {
 public:
  RcclBackend(fabric::RankContext& ctx, const sim::CclProfile& profile)
      : RingCclBackend(CclKind::Rccl, ctx, profile, nccl_family_capabilities()) {}
};

/// Habana HCCL emulation: NCCL-compatible API, float-only datatype support,
/// large launch overhead, multi-node small-message step quirks.
class HcclBackend final : public RingCclBackend {
 public:
  HcclBackend(fabric::RankContext& ctx, const sim::CclProfile& profile)
      : RingCclBackend(CclKind::Hccl, ctx, profile, hccl_capabilities()) {}
};

/// Intel oneCCL emulation (the paper's future-work target): NCCL-family
/// algorithms with oneCCL's datatype coverage (no bfloat16 reduction in the
/// era the paper targets).
class OneCclBackend final : public RingCclBackend {
 public:
  OneCclBackend(fabric::RankContext& ctx, const sim::CclProfile& profile)
      : RingCclBackend(CclKind::OneCcl, ctx, profile, oneccl_capabilities()) {}
};

}  // namespace mpixccl::xccl
