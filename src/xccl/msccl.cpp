#include "xccl/msccl.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/reduce.hpp"

namespace mpixccl::xccl {

MscclAlgorithm MscclAlgorithm::allpairs_allreduce(int nranks, std::size_t min_bytes,
                                                  std::size_t max_bytes) {
  MscclAlgorithm algo;
  algo.name = "allpairs_allreduce_p" + std::to_string(nranks);
  algo.coll = BuiltinColl::AllReduce;
  algo.nranks = nranks;
  algo.nchunks = 1;
  algo.min_bytes = min_bytes;
  algo.max_bytes = max_bytes;
  algo.programs.resize(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    auto& prog = algo.programs[static_cast<std::size_t>(r)];
    // Step 0: send my vector to every peer.
    for (int peer = 0; peer < nranks; ++peer) {
      if (peer == r) continue;
      prog.push_back(MscclInstr{MscclInstr::Op::Send, peer, 0, 0, 0});
    }
    // Step 1: reduce every peer's vector into mine.
    for (int peer = 0; peer < nranks; ++peer) {
      if (peer == r) continue;
      prog.push_back(MscclInstr{MscclInstr::Op::RecvReduceCopy, peer, 0, 0, 1});
    }
  }
  return algo;
}

void MscclAlgorithm::validate() const {
  require(nranks >= 1, "MscclAlgorithm: nranks must be >= 1");
  require(nchunks >= 1, "MscclAlgorithm: nchunks must be >= 1");
  require(programs.size() == static_cast<std::size_t>(nranks),
          "MscclAlgorithm: one program per rank required");
  require(min_bytes <= max_bytes, "MscclAlgorithm: empty byte window");
  // Chunk indices may address the scratch area [nchunks, 2*nchunks).
  const int max_chunk = 2 * nchunks;
  for (const auto& prog : programs) {
    int last_step = 0;
    for (const auto& in : prog) {
      require(in.step >= last_step, "MscclAlgorithm: steps must be sorted");
      last_step = in.step;
      require(in.src_chunk >= 0 && in.src_chunk < max_chunk &&
                  in.dst_chunk >= 0 && in.dst_chunk < max_chunk,
              "MscclAlgorithm: chunk index out of range");
      if (in.op != MscclInstr::Op::Copy) {
        require(in.peer >= 0 && in.peer < nranks,
                "MscclAlgorithm: peer out of range");
      }
    }
  }
}

namespace {

BuiltinColl coll_from_name(const std::string& name) {
  for (const BuiltinColl c :
       {BuiltinColl::AllReduce, BuiltinColl::Broadcast, BuiltinColl::Reduce,
        BuiltinColl::AllGather, BuiltinColl::ReduceScatter}) {
    if (to_string(c) == name) return c;
  }
  throw Error("msccl parse: unknown collective '" + name + "'");
}

/// "key=value" -> value as integer, with "max" meaning SIZE_MAX for sizes.
std::size_t parse_kv(const std::string& token, const std::string& key) {
  const std::string prefix = key + "=";
  require(token.rfind(prefix, 0) == 0,
          "msccl parse: expected '" + key + "=...', got '" + token + "'");
  const std::string value = token.substr(prefix.size());
  if (value == "max") return SIZE_MAX;
  return std::stoull(value);
}

}  // namespace

MscclAlgorithm MscclAlgorithm::parse(const std::string& text) {
  MscclAlgorithm algo;
  bool have_header = false;
  int current_rank = -1;

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word) || word[0] == '#') continue;

    if (word == "algorithm") {
      std::string name;
      std::string coll;
      std::string kv;
      require(static_cast<bool>(ls >> name >> coll),
              "msccl parse: malformed algorithm header");
      algo.name = name;
      algo.coll = coll_from_name(coll);
      while (ls >> kv) {
        if (kv.rfind("nranks=", 0) == 0) {
          algo.nranks = static_cast<int>(parse_kv(kv, "nranks"));
        } else if (kv.rfind("nchunks=", 0) == 0) {
          algo.nchunks = static_cast<int>(parse_kv(kv, "nchunks"));
        } else if (kv.rfind("min_bytes=", 0) == 0) {
          algo.min_bytes = parse_kv(kv, "min_bytes");
        } else if (kv.rfind("max_bytes=", 0) == 0) {
          algo.max_bytes = parse_kv(kv, "max_bytes");
        } else {
          throw Error("msccl parse: unknown header key '" + kv + "'");
        }
      }
      require(algo.nranks >= 1, "msccl parse: header must set nranks");
      algo.programs.assign(static_cast<std::size_t>(algo.nranks), {});
      have_header = true;
      continue;
    }

    require(have_header, "msccl parse: instruction before 'algorithm' header");
    if (word == "rank") {
      int r = -1;
      require(static_cast<bool>(ls >> r) && r >= 0 && r < algo.nranks,
              "msccl parse: bad rank line " + std::to_string(line_no));
      current_rank = r;
      continue;
    }

    require(current_rank >= 0,
            "msccl parse: instruction before any 'rank' line");
    MscclInstr instr;
    std::string kv;
    if (word == "send" || word == "recv" || word == "recvreduce") {
      instr.op = (word == "send")        ? MscclInstr::Op::Send
                 : (word == "recv")      ? MscclInstr::Op::Recv
                                         : MscclInstr::Op::RecvReduceCopy;
      while (ls >> kv) {
        if (kv.rfind("peer=", 0) == 0) {
          instr.peer = static_cast<int>(parse_kv(kv, "peer"));
        } else if (kv.rfind("chunk=", 0) == 0) {
          const int c = static_cast<int>(parse_kv(kv, "chunk"));
          instr.src_chunk = c;
          instr.dst_chunk = c;
        } else if (kv.rfind("step=", 0) == 0) {
          instr.step = static_cast<int>(parse_kv(kv, "step"));
        } else {
          throw Error("msccl parse: unknown key '" + kv + "'");
        }
      }
    } else if (word == "copy") {
      instr.op = MscclInstr::Op::Copy;
      while (ls >> kv) {
        if (kv.rfind("src=", 0) == 0) {
          instr.src_chunk = static_cast<int>(parse_kv(kv, "src"));
        } else if (kv.rfind("dst=", 0) == 0) {
          instr.dst_chunk = static_cast<int>(parse_kv(kv, "dst"));
        } else if (kv.rfind("step=", 0) == 0) {
          instr.step = static_cast<int>(parse_kv(kv, "step"));
        } else {
          throw Error("msccl parse: unknown key '" + kv + "'");
        }
      }
    } else {
      throw Error("msccl parse: unknown instruction '" + word + "' at line " +
                  std::to_string(line_no));
    }
    algo.programs[static_cast<std::size_t>(current_rank)].push_back(instr);
  }

  require(have_header, "msccl parse: missing 'algorithm' header");
  algo.validate();
  return algo;
}

MscclAlgorithm MscclAlgorithm::load_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "msccl load_file: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

std::string MscclAlgorithm::serialize() const {
  std::ostringstream os;
  os << "algorithm " << name << ' ' << to_string(coll) << " nranks=" << nranks
     << " nchunks=" << nchunks << " min_bytes=" << min_bytes << " max_bytes=";
  if (max_bytes == SIZE_MAX) {
    os << "max";
  } else {
    os << max_bytes;
  }
  os << '\n';
  for (int r = 0; r < nranks; ++r) {
    os << "rank " << r << '\n';
    for (const MscclInstr& in : programs[static_cast<std::size_t>(r)]) {
      switch (in.op) {
        case MscclInstr::Op::Send:
          os << "  send peer=" << in.peer << " chunk=" << in.src_chunk;
          break;
        case MscclInstr::Op::Recv:
          os << "  recv peer=" << in.peer << " chunk=" << in.dst_chunk;
          break;
        case MscclInstr::Op::RecvReduceCopy:
          os << "  recvreduce peer=" << in.peer << " chunk=" << in.dst_chunk;
          break;
        case MscclInstr::Op::Copy:
          os << "  copy src=" << in.src_chunk << " dst=" << in.dst_chunk;
          break;
      }
      os << " step=" << in.step << '\n';
    }
  }
  return os.str();
}

MscclBackend::MscclBackend(fabric::RankContext& ctx, const sim::CclProfile& profile)
    : RingCclBackend(CclKind::Msccl, ctx, profile, nccl_family_capabilities()) {}

void MscclBackend::register_algorithm(MscclAlgorithm algo) {
  algo.validate();
  registered_.push_back(std::move(algo));
}

const MscclAlgorithm* MscclBackend::find(BuiltinColl coll, int nranks,
                                         std::size_t bytes) {
  for (const auto& a : registered_) {
    if (a.coll == coll && a.nranks == nranks && bytes >= a.min_bytes &&
        bytes <= a.max_bytes) {
      return &a;
    }
  }
  if (builtin_allpairs_ && coll == BuiltinColl::AllReduce && nranks > 1 &&
      bytes >= kAllpairsMinBytes && bytes <= kAllpairsMaxBytes) {
    auto it = allpairs_cache_.find(nranks);
    if (it == allpairs_cache_.end()) {
      it = allpairs_cache_
               .emplace(nranks, MscclAlgorithm::allpairs_allreduce(
                                    nranks, kAllpairsMinBytes, kAllpairsMaxBytes))
               .first;
    }
    return &it->second;
  }
  return nullptr;
}

std::optional<std::string> MscclBackend::algorithm_for(BuiltinColl coll, int nranks,
                                                       std::size_t bytes) {
  const MscclAlgorithm* a = find(coll, nranks, bytes);
  if (a == nullptr) return std::nullopt;
  return a->name;
}

sim::TimeUs MscclBackend::run_allreduce_program(const MscclAlgorithm& algo,
                                                const void* sendbuf, void* recvbuf,
                                                std::size_t count, DataType dt,
                                                ReduceOp op, CclComm& comm,
                                                sim::TimeUs t0) {
  const std::size_t esz = datatype_size(dt);
  const std::size_t bytes = count * esz;
  const auto un = static_cast<std::size_t>(algo.nchunks);
  const std::size_t chunk_count = (count + un - 1) / un;
  const std::size_t chunk_bytes = chunk_count * esz;

  // Working area: chunks [0, nchunks) alias the output buffer (padded into
  // scratch space when count does not divide evenly); chunks
  // [nchunks, 2*nchunks) are scratch.
  std::vector<std::byte> work(chunk_bytes * un * 2, std::byte{0});
  std::memcpy(work.data(), sendbuf, bytes);
  auto chunk_ptr = [&](int c) {
    return work.data() + static_cast<std::size_t>(c) * chunk_bytes;
  };
  auto chunk_len = [&](int c) {
    // Last data chunk may be short; scratch chunks are full-size.
    if (c == algo.nchunks - 1) return bytes - chunk_bytes * (un - 1);
    return chunk_bytes;
  };

  const auto& prog = algo.programs[static_cast<std::size_t>(comm.rank())];
  const fabric::ChannelId ch = comm.next_op_channel();
  sim::TimeUs t = t0;
  sim::VirtualClock scratch_clock;
  std::vector<std::byte> inbox(chunk_bytes);

  // Send completions are collected across the whole program and folded into
  // the final time: waiting per step would deadlock, since a rendezvous send
  // only resolves once the peer posts the matching recv in a *later* step.
  std::vector<fabric::PendingSend> all_sends;

  std::size_t i = 0;
  while (i < prog.size()) {
    const int step = prog[i].step;
    std::size_t end = i;
    std::size_t step_recvs = 0;
    while (end < prog.size() && prog[end].step == step) {
      if (prog[end].op == MscclInstr::Op::Recv ||
          prog[end].op == MscclInstr::Op::RecvReduceCopy) {
        ++step_recvs;
      }
      ++end;
    }

    // Phase A: issue all sends and copies of this step at time t.
    for (std::size_t k = i; k < end; ++k) {
      const auto& in = prog[k];
      if (in.op == MscclInstr::Op::Send) {
        fabric::SendPolicy policy{.rendezvous = true, .eager_complete_us = 0.0};
        // All program traffic shares tag 0: sender/receiver step numbers can
        // differ for the same transfer, and FIFO matching per (src, channel)
        // already mirrors program order.
        all_sends.push_back(
            ctx().endpoint_of(comm.world_rank(in.peer))
                .deliver(ctx().rank(), 0, ch, chunk_ptr(in.src_chunk),
                         chunk_len(in.src_chunk), t, policy));
      } else if (in.op == MscclInstr::Op::Copy) {
        std::memcpy(chunk_ptr(in.dst_chunk), chunk_ptr(in.src_chunk),
                    chunk_len(in.src_chunk));
      }
    }
    // Phase B: complete all receives; concurrent arrivals share the link.
    sim::TimeUs step_end = t;
    for (std::size_t k = i; k < end; ++k) {
      const auto& in = prog[k];
      if (in.op != MscclInstr::Op::Recv && in.op != MscclInstr::Op::RecvReduceCopy) {
        continue;
      }
      // Custom algorithms run as fused kernels: transfers pay the pipelined
      // hop cost, not the full p2p protocol alpha; concurrent arrivals
      // share the link (hence bytes * step_recvs).
      auto cost = [this, step_recvs](int sw, std::size_t b) {
        return tree_hop_cost(sw, b * std::max<std::size_t>(step_recvs, 1));
      };
      auto pr = ctx().endpoint().post_recv(comm.world_rank(in.peer), 0, ch,
                                           inbox.data(), chunk_bytes, t, cost);
      const fabric::RecvResult res = pr.wait(scratch_clock);
      step_end = std::max(step_end, res.completion);
      if (in.op == MscclInstr::Op::Recv) {
        std::memcpy(chunk_ptr(in.dst_chunk), inbox.data(), res.bytes);
      } else {
        const std::size_t n = res.bytes / esz;
        throw_if_error(apply_reduce(dt, op, inbox.data(), chunk_ptr(in.dst_chunk), n),
                       "msccl recv-reduce");
      }
    }
    t = step_end;
    i = end;
  }
  for (auto& s : all_sends) t = std::max(t, s.wait(scratch_clock));

  std::memcpy(recvbuf, work.data(), bytes);
  return t;
}

XcclResult MscclBackend::all_reduce(const void* sendbuf, void* recvbuf,
                                    std::size_t count, DataType dt, ReduceOp op,
                                    CclComm& comm, device::Stream& stream) {
  if (!comm.valid()) return XcclResult::InvalidUsage;
  if (auto r = check_reduce(dt, op); !ok(r)) return r;
  const std::size_t bytes = count * datatype_size(dt);
  const MscclAlgorithm* algo = find(BuiltinColl::AllReduce, comm.nranks(), bytes);
  if (algo == nullptr) {
    return RingCclBackend::all_reduce(sendbuf, recvbuf, count, dt, op, comm,
                                      stream);
  }
  const sim::TimeUs t0 = begin_op(stream);
  const sim::TimeUs t =
      run_allreduce_program(*algo, sendbuf, recvbuf, count, dt, op, comm, t0);
  if (op == ReduceOp::Avg) {
    throw_if_error(scale_inplace(dt, recvbuf, count, 1.0 / comm.nranks()),
                   "msccl allreduce avg");
  }
  stream.advance_tail_to(t);
  return XcclResult::Success;
}

}  // namespace mpixccl::xccl
