#pragma once
// MSCCL backend: NCCL-compatible API plus programmable custom collective
// algorithms, mirroring Microsoft's MSCCL (interpreter over an algorithm IR,
// with NCCL as the fallback for everything not covered by a program).
//
// An MscclAlgorithm is a per-rank instruction list over message chunks.
// Instructions with the same `step` value execute concurrently; steps
// execute in order. This is a compact equivalent of MSCCL-XML's threadblock
// programs and is expressive enough for the algorithms the paper exercises
// (the allpairs allreduce that beats ring/tree in the 256 B - 256 KB window).

#include <map>
#include <optional>
#include <string>

#include "xccl/ring_backend.hpp"

namespace mpixccl::xccl {

struct MscclInstr {
  enum class Op {
    Send,            ///< send chunk src_chunk to peer
    Recv,            ///< receive into chunk dst_chunk from peer
    RecvReduceCopy,  ///< receive from peer and reduce into chunk dst_chunk
    Copy,            ///< local chunk copy src_chunk -> dst_chunk
  };
  Op op = Op::Copy;
  int peer = -1;      ///< comm rank (Send/Recv*)
  int src_chunk = 0;  ///< chunk index (Send/Copy)
  int dst_chunk = 0;  ///< chunk index (Recv/RecvReduceCopy/Copy)
  int step = 0;       ///< instructions sharing a step run concurrently
};

struct MscclAlgorithm {
  std::string name;
  BuiltinColl coll = BuiltinColl::AllReduce;
  int nranks = 0;
  int nchunks = 1;  ///< the user message is split into this many chunks
  std::size_t min_bytes = 0;
  std::size_t max_bytes = SIZE_MAX;
  std::vector<std::vector<MscclInstr>> programs;  ///< one program per rank

  /// The classic MSCCL "allpairs" allreduce: one exchange phase where every
  /// rank sends its full vector to every peer and reduces what it receives.
  /// One alpha instead of O(p) of them; bandwidth-bound above the window.
  static MscclAlgorithm allpairs_allreduce(int nranks, std::size_t min_bytes,
                                           std::size_t max_bytes);

  /// Validate shape (program count, chunk indices, peer ranges). Throws
  /// Error on malformed algorithms.
  void validate() const;

  /// Parse the textual algorithm format (the stand-in for MSCCL-XML):
  ///
  ///   # comment
  ///   algorithm <name> <allreduce|broadcast|...> nranks=<n> nchunks=<c> \
  ///             min_bytes=<b> max_bytes=<b|max>
  ///   rank <r>
  ///     send peer=<p> chunk=<c> step=<s>
  ///     recv peer=<p> chunk=<c> step=<s>
  ///     recvreduce peer=<p> chunk=<c> step=<s>
  ///     copy src=<c> dst=<c> step=<s>
  ///
  /// The result is validated; throws Error on malformed input.
  static MscclAlgorithm parse(const std::string& text);
  /// Parse from a file (the deployment flow: ship .msccl files, load at
  /// startup, register on the backend).
  static MscclAlgorithm load_file(const std::string& path);

  /// Inverse of parse(): render the textual form.
  [[nodiscard]] std::string serialize() const;
};

class MscclBackend : public RingCclBackend {
 public:
  MscclBackend(fabric::RankContext& ctx, const sim::CclProfile& profile);

  /// Register a custom algorithm (the MSCCL programmability feature). The
  /// first registered algorithm matching (coll, nranks, bytes) wins.
  void register_algorithm(MscclAlgorithm algo);

  /// Enable/disable synthesizing the built-in allpairs allreduce for
  /// medium-size messages when no registered algorithm matches (on by
  /// default; the ablation bench turns it off).
  void set_builtin_allpairs(bool enabled) { builtin_allpairs_ = enabled; }

  XcclResult all_reduce(const void* sendbuf, void* recvbuf, std::size_t count,
                        DataType dt, ReduceOp op, CclComm& comm,
                        device::Stream& stream) override;

  /// Which algorithm name would serve this call (testing/introspection);
  /// nullopt means the NCCL-style base path.
  [[nodiscard]] std::optional<std::string> algorithm_for(BuiltinColl coll,
                                                         int nranks,
                                                         std::size_t bytes);

 private:
  const MscclAlgorithm* find(BuiltinColl coll, int nranks, std::size_t bytes);

  /// Interpret `algo` for an allreduce-shaped call. Returns the completion
  /// time on success.
  sim::TimeUs run_allreduce_program(const MscclAlgorithm& algo,
                                    const void* sendbuf, void* recvbuf,
                                    std::size_t count, DataType dt, ReduceOp op,
                                    CclComm& comm, sim::TimeUs t0);

  std::vector<MscclAlgorithm> registered_;
  std::map<int, MscclAlgorithm> allpairs_cache_;  ///< per nranks
  bool builtin_allpairs_ = true;

  /// Builtin allpairs window, matching the paper's observation that MSCCL
  /// beats NCCL for medium messages (256 B to 256 KB).
  static constexpr std::size_t kAllpairsMinBytes = 256;
  static constexpr std::size_t kAllpairsMaxBytes = 262144;
};

}  // namespace mpixccl::xccl
