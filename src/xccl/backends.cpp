#include "xccl/backend.hpp"
#include "xccl/msccl.hpp"
#include "xccl/vendors.hpp"

namespace mpixccl::xccl {

Capabilities nccl_family_capabilities() {
  Capabilities caps;
  caps.movable = {DataType::Int8,    DataType::Uint8,   DataType::Int32,
                  DataType::Uint32,  DataType::Int64,   DataType::Uint64,
                  DataType::Float16, DataType::BFloat16, DataType::Float32,
                  DataType::Float64, DataType::Byte};
  caps.reducible = {DataType::Int8,    DataType::Uint8,    DataType::Int32,
                    DataType::Uint32,  DataType::Int64,    DataType::Uint64,
                    DataType::Float16, DataType::BFloat16, DataType::Float32,
                    DataType::Float64};
  caps.ops = {ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Min, ReduceOp::Max,
              ReduceOp::Avg};
  return caps;
}

Capabilities hccl_capabilities() {
  // "HCCL only supports float currently" (paper Sec. 3.2); no Avg either.
  Capabilities caps;
  caps.movable = {DataType::Float32};
  caps.reducible = {DataType::Float32};
  caps.ops = {ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Min, ReduceOp::Max};
  return caps;
}

Capabilities oneccl_capabilities() {
  Capabilities caps = nccl_family_capabilities();
  caps.reducible.erase(DataType::BFloat16);  // moved but not reduced
  caps.ops.erase(ReduceOp::Avg);             // oneCCL has no average op
  return caps;
}

std::unique_ptr<CclBackend> make_backend(CclKind kind, fabric::RankContext& ctx,
                                         const sim::CclProfile& profile) {
  switch (kind) {
    case CclKind::Nccl: return std::make_unique<NcclBackend>(ctx, profile);
    case CclKind::Rccl: return std::make_unique<RcclBackend>(ctx, profile);
    case CclKind::Hccl: return std::make_unique<HcclBackend>(ctx, profile);
    case CclKind::Msccl: return std::make_unique<MscclBackend>(ctx, profile);
    case CclKind::OneCcl: return std::make_unique<OneCclBackend>(ctx, profile);
  }
  throw Error("make_backend: unknown CclKind");
}

}  // namespace mpixccl::xccl
