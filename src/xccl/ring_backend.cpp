#include "xccl/ring_backend.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/reduce.hpp"

namespace mpixccl::xccl {

namespace {

/// Ring collectives switch to the pipelined path above this chunk size; the
/// chunk count mirrors NCCL's fixed-size chunking.
constexpr std::size_t kPipelineChunkBytes = 262144;
constexpr int kMaxPipelineChunks = 16;

constexpr double kCommInitUs = 1200.0;  // one-time communicator setup cost

int floor_pow2(int n) {
  int p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

std::byte* at(void* base, std::size_t off) {
  return static_cast<std::byte*>(base) + off;
}

}  // namespace

XcclResult CclBackend::comm_init_rank(CclComm& comm, int nranks, const UniqueId& id,
                                      int rank, std::vector<int> world_ranks) {
  if (nranks < 1 || rank < 0 || rank >= nranks) return XcclResult::InvalidArgument;
  if (world_ranks.empty()) {
    world_ranks.resize(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) world_ranks[static_cast<std::size_t>(r)] = r;
  }
  if (world_ranks.size() != static_cast<std::size_t>(nranks)) {
    return XcclResult::InvalidArgument;
  }
  set_comm(comm, rank, std::move(world_ranks), id.channel());
  ctx().clock().advance(kCommInitUs);
  return XcclResult::Success;
}

XcclResult RingCclBackend::check_move(DataType dt) const {
  return caps_.can_move(dt) ? XcclResult::Success : XcclResult::UnsupportedDatatype;
}

XcclResult RingCclBackend::check_reduce(DataType dt, ReduceOp op) const {
  if (!caps_.reducible.contains(dt)) return XcclResult::UnsupportedDatatype;
  if (!caps_.ops.contains(op)) return XcclResult::UnsupportedOperation;
  return XcclResult::Success;
}

const sim::LinkParams& RingCclBackend::link(int peer_world) const {
  // `ctx()` is non-const only because of the RankContext accessors; the
  // lookup itself has no side effects.
  auto& self = const_cast<RingCclBackend&>(*this);
  const bool intra = self.ctx().topology().same_node(self.ctx().rank(), peer_world);
  return intra ? prof_.p2p_intra : prof_.p2p_inter;
}

double RingCclBackend::ring_hop_cost(int src_world, std::size_t bytes) const {
  const sim::LinkParams& l = link(src_world);
  return prof_.ring_step_us + static_cast<double>(bytes) / l.bw_MBps;
}

double RingCclBackend::tree_hop_cost(int src_world, std::size_t bytes) const {
  const sim::LinkParams& l = link(src_world);
  return prof_.tree_hop_us + static_cast<double>(bytes) / l.bw_MBps;
}

double RingCclBackend::p2p_cost(int src_world, std::size_t bytes,
                                std::size_t concurrent, bool bidirectional) const {
  // Concurrent incoming transfers share the link; alpha is paid once each.
  // Under simultaneous send+recv load the per-direction bandwidth drops by
  // the link's duplex efficiency (NCCL bibw 181 GB/s vs 2x137 uni).
  const sim::LinkParams& l = link(src_world);
  const double bw = bidirectional ? l.bw_MBps * l.bidir_factor : l.bw_MBps;
  return l.alpha_us +
         static_cast<double>(bytes * std::max<std::size_t>(concurrent, 1)) / bw;
}

double RingCclBackend::quirk_extra(const CclComm& comm, std::size_t bytes) const {
  if (prof_.inter_quirks.empty()) return 0.0;
  auto& self = const_cast<RingCclBackend&>(*this);
  const auto& topo = self.ctx().topology();
  bool multi_node = false;
  for (int r = 1; r < comm.nranks(); ++r) {
    if (!topo.same_node(comm.world_rank(0), comm.world_rank(r))) {
      multi_node = true;
      break;
    }
  }
  if (!multi_node) return 0.0;
  double extra = 0.0;
  for (const auto& q : prof_.inter_quirks) {
    if (bytes > q.min_bytes) extra += q.extra_us;
  }
  return extra;
}

sim::TimeUs RingCclBackend::begin_op(device::Stream& stream) {
  ctx().clock().advance(prof_.launch_us);
  return std::max(stream.tail(), ctx().clock().now());
}

sim::TimeUs RingCclBackend::step_exchange(CclComm& comm, fabric::ChannelId ch,
                                          int tag, int dst, const void* sbuf,
                                          std::size_t sbytes, int src, void* rbuf,
                                          std::size_t rbytes, sim::TimeUs ready,
                                          bool tree_hop) {
  fabric::PendingSend ps;
  fabric::PendingRecv pr;
  if (dst >= 0) {
    const int dst_world = comm.world_rank(dst);
    fabric::SendPolicy policy{.rendezvous = true, .eager_complete_us = 0.0};
    ps = ctx().endpoint_of(dst_world).deliver(ctx().rank(), tag, ch, sbuf, sbytes,
                                              ready, policy);
  }
  if (src >= 0) {
    const int src_world = comm.world_rank(src);
    auto cost = [this, tree_hop](int sw, std::size_t b) {
      return tree_hop ? tree_hop_cost(sw, b) : ring_hop_cost(sw, b);
    };
    pr = ctx().endpoint().post_recv(src_world, tag, ch, rbuf, rbytes, ready, cost);
  }
  sim::TimeUs t = ready;
  sim::VirtualClock scratch;  // completions are read from the return values
  if (ps.valid()) t = std::max(t, ps.wait(scratch));
  if (pr.valid()) t = std::max(t, pr.wait(scratch).completion);
  return t;
}

// ---- AllReduce -------------------------------------------------------------

sim::TimeUs RingCclBackend::allreduce_tree(const void* sendbuf, void* recvbuf,
                                           std::size_t count, DataType dt,
                                           ReduceOp op, CclComm& comm,
                                           fabric::ChannelId ch, sim::TimeUs t0) {
  // Binomial reduce to comm rank 0 followed by binomial broadcast.
  const std::size_t bytes = count * datatype_size(dt);
  const int p = comm.nranks();
  const int me = comm.rank();
  if (sendbuf != recvbuf) std::memcpy(recvbuf, sendbuf, bytes);

  std::vector<std::byte> inbox(bytes);
  sim::TimeUs t = t0;
  // Reduce phase.
  int mask = 1;
  while (mask < p) {
    if ((me & mask) == 0) {
      const int src = me | mask;
      if (src < p) {
        t = step_exchange(comm, ch, 1, -1, nullptr, 0, src, inbox.data(), bytes, t,
                          /*tree_hop=*/true);
        throw_if_error(apply_reduce(dt, op, inbox.data(), recvbuf, count),
                       "xccl allreduce");
      }
    } else {
      t = step_exchange(comm, ch, 1, me ^ mask, recvbuf, bytes, -1, nullptr, 0, t,
                        true);
      break;
    }
    mask <<= 1;
  }
  // Broadcast phase (root = 0).
  int recv_mask = 1;
  while (recv_mask < p) {
    if (me & recv_mask) {
      t = step_exchange(comm, ch, 2, -1, nullptr, 0, me ^ recv_mask, recvbuf, bytes,
                        t, true);
      break;
    }
    recv_mask <<= 1;
  }
  int send_mask = (me == 0) ? floor_pow2(p) : (recv_mask >> 1);
  for (; send_mask > 0; send_mask >>= 1) {
    const int child = me | send_mask;
    if (child < p && child != me) {
      t = step_exchange(comm, ch, 2, child, recvbuf, bytes, -1, nullptr, 0, t, true);
    }
  }
  return t;
}

sim::TimeUs RingCclBackend::ring_reduce_scatter(const void* sendbuf, void* scratch,
                                                std::size_t block_count, DataType dt,
                                                ReduceOp op, CclComm& comm,
                                                fabric::ChannelId ch,
                                                sim::TimeUs t0) {
  // `scratch` holds p blocks of block_count elements; on return, block `me`
  // is fully reduced. Standard NCCL-style ring.
  const int p = comm.nranks();
  const int me = comm.rank();
  const std::size_t esz = datatype_size(dt);
  const std::size_t block = block_count * esz;
  if (scratch != sendbuf) {
    std::memcpy(scratch, sendbuf, block * static_cast<std::size_t>(p));
  }

  std::vector<std::byte> inbox(block);
  const int right = (me + 1) % p;
  const int left = (me - 1 + p) % p;
  sim::TimeUs t = t0;
  for (int s = 0; s < p - 1; ++s) {
    const auto send_block = static_cast<std::size_t>((me - s - 1 + p) % p);
    const auto recv_block = static_cast<std::size_t>((me - s - 2 + 2 * p) % p);
    t = step_exchange(comm, ch, 10 + s, right, at(scratch, send_block * block),
                      block, left, inbox.data(), block, t, false);
    throw_if_error(apply_reduce(dt, op, inbox.data(),
                                at(scratch, recv_block * block), block_count),
                   "xccl ring reduce-scatter");
  }
  return t;
}

sim::TimeUs RingCclBackend::allreduce_ring(const void* sendbuf, void* recvbuf,
                                           std::size_t count, DataType dt,
                                           ReduceOp op, CclComm& comm,
                                           fabric::ChannelId ch, sim::TimeUs t0) {
  // Ring reduce-scatter over ceil(count/p)-sized blocks, then ring allgather.
  const int p = comm.nranks();
  const int me = comm.rank();
  const std::size_t esz = datatype_size(dt);
  const std::size_t up = static_cast<std::size_t>(p);
  const std::size_t block_count = (count + up - 1) / up;
  const std::size_t padded = block_count * up;

  std::vector<std::byte> scratch(padded * esz, std::byte{0});
  std::memcpy(scratch.data(), sendbuf, count * esz);
  // Padding elements must be the identity for sum-like ops; zero works for
  // Sum/Avg and is harmless for Min/Max/Prod since every rank pads equally
  // (all ranks contribute the same pad value, so the reduced pad is just
  // dropped below).
  sim::TimeUs t =
      ring_reduce_scatter(scratch.data(), scratch.data(), block_count, dt, op,
                          comm, ch, t0);

  // Ring allgather of the reduced blocks.
  const std::size_t block = block_count * esz;
  const int right = (me + 1) % p;
  const int left = (me - 1 + p) % p;
  for (int s = 0; s < p - 1; ++s) {
    const auto send_block = static_cast<std::size_t>((me - s + p) % p);
    const auto recv_block = static_cast<std::size_t>((me - s - 1 + p) % p);
    t = step_exchange(comm, ch, 100 + s, right,
                      scratch.data() + send_block * block, block, left,
                      scratch.data() + recv_block * block, block, t, false);
  }
  std::memcpy(recvbuf, scratch.data(), count * esz);
  return t;
}

XcclResult RingCclBackend::all_reduce(const void* sendbuf, void* recvbuf,
                                      std::size_t count, DataType dt, ReduceOp op,
                                      CclComm& comm, device::Stream& stream) {
  if (!comm.valid()) return XcclResult::InvalidUsage;
  if (auto r = check_reduce(dt, op); !ok(r)) return r;
  const std::size_t bytes = count * datatype_size(dt);
  const fabric::ChannelId ch = comm.next_op_channel();
  const sim::TimeUs t0 = begin_op(stream);

  sim::TimeUs t;
  if (comm.nranks() == 1) {
    if (sendbuf != recvbuf) std::memcpy(recvbuf, sendbuf, bytes);
    t = t0;
  } else if (bytes <= prof_.tree_threshold ||
             count < static_cast<std::size_t>(comm.nranks())) {
    t = allreduce_tree(sendbuf, recvbuf, count, dt, op, comm, ch, t0);
  } else {
    t = allreduce_ring(sendbuf, recvbuf, count, dt, op, comm, ch, t0);
  }
  if (op == ReduceOp::Avg) {
    throw_if_error(scale_inplace(dt, recvbuf, count, 1.0 / comm.nranks()),
                   "xccl allreduce avg");
  }
  stream.advance_tail_to(t + quirk_extra(comm, bytes));
  return XcclResult::Success;
}

// ---- Broadcast --------------------------------------------------------------

sim::TimeUs RingCclBackend::bcast_tree(void* buf, std::size_t bytes, int root,
                                       CclComm& comm, fabric::ChannelId ch,
                                       sim::TimeUs t0) {
  const int p = comm.nranks();
  const int me = comm.rank();
  const int vrank = (me - root + p) % p;
  sim::TimeUs t = t0;
  int recv_mask = 1;
  while (recv_mask < p) {
    if (vrank & recv_mask) {
      const int parent = ((vrank ^ recv_mask) + root) % p;
      t = step_exchange(comm, ch, 1, -1, nullptr, 0, parent, buf, bytes, t, true);
      break;
    }
    recv_mask <<= 1;
  }
  int send_mask = (vrank == 0) ? floor_pow2(p) : (recv_mask >> 1);
  for (; send_mask > 0; send_mask >>= 1) {
    const int vchild = vrank | send_mask;
    if (vchild < p && vchild != vrank) {
      t = step_exchange(comm, ch, 1, (vchild + root) % p, buf, bytes, -1, nullptr,
                        0, t, true);
    }
  }
  return t;
}

sim::TimeUs RingCclBackend::bcast_ring(void* buf, std::size_t bytes, int root,
                                       CclComm& comm, fabric::ChannelId ch,
                                       sim::TimeUs t0) {
  // Chunked pipelined ring: rank k forwards chunk c as soon as it arrives,
  // so completion ~ t0 + (k-1) hops + n/bw instead of (p-1) * n/bw.
  const int p = comm.nranks();
  const int me = comm.rank();
  const int vrank = (me - root + p) % p;
  const int right = (vrank + 1 < p) ? (me + 1) % p : -1;  // tail sends nothing
  const int left = (vrank > 0) ? (me - 1 + p) % p : -1;   // root receives nothing

  const int nchunks = static_cast<int>(std::clamp<std::size_t>(
      bytes / kPipelineChunkBytes, 1, kMaxPipelineChunks));
  const std::size_t chunk = (bytes + static_cast<std::size_t>(nchunks) - 1) /
                            static_cast<std::size_t>(nchunks);

  sim::TimeUs t = t0;
  std::vector<fabric::PendingSend> sends;
  sim::VirtualClock scratch;
  for (int c = 0; c < nchunks; ++c) {
    const std::size_t off = static_cast<std::size_t>(c) * chunk;
    const std::size_t len = std::min(chunk, bytes - off);
    if (left >= 0) {
      auto cost = [this](int sw, std::size_t b) { return ring_hop_cost(sw, b); };
      auto pr = ctx().endpoint().post_recv(comm.world_rank(left), c, ch,
                                           at(buf, off), len, t, cost);
      t = std::max(t, pr.wait(scratch).completion);
    }
    if (right >= 0) {
      fabric::SendPolicy policy{.rendezvous = true, .eager_complete_us = 0.0};
      sends.push_back(ctx().endpoint_of(comm.world_rank(right))
                          .deliver(ctx().rank(), c, ch, at(buf, off), len, t,
                                   policy));
    }
  }
  for (auto& s : sends) t = std::max(t, s.wait(scratch));
  return t;
}

XcclResult RingCclBackend::broadcast(void* buf, std::size_t count, DataType dt,
                                     int root, CclComm& comm,
                                     device::Stream& stream) {
  if (!comm.valid()) return XcclResult::InvalidUsage;
  if (root < 0 || root >= comm.nranks()) return XcclResult::InvalidArgument;
  if (auto r = check_move(dt); !ok(r)) return r;
  const std::size_t bytes = count * datatype_size(dt);
  const fabric::ChannelId ch = comm.next_op_channel();
  const sim::TimeUs t0 = begin_op(stream);
  sim::TimeUs t = t0;
  if (comm.nranks() > 1) {
    t = (bytes <= prof_.tree_threshold)
            ? bcast_tree(buf, bytes, root, comm, ch, t0)
            : bcast_ring(buf, bytes, root, comm, ch, t0);
  }
  stream.advance_tail_to(t + quirk_extra(comm, bytes));
  return XcclResult::Success;
}

// ---- Reduce -----------------------------------------------------------------

sim::TimeUs RingCclBackend::reduce_tree(const void* sendbuf, void* recvbuf,
                                        std::size_t count, DataType dt, ReduceOp op,
                                        int root, CclComm& comm,
                                        fabric::ChannelId ch, sim::TimeUs t0) {
  const int p = comm.nranks();
  const int me = comm.rank();
  const std::size_t bytes = count * datatype_size(dt);

  std::vector<std::byte> scratch;
  void* acc;
  if (me == root) {
    acc = recvbuf;
  } else {
    scratch.resize(bytes);
    acc = scratch.data();
  }
  std::memcpy(acc, sendbuf, bytes);

  std::vector<std::byte> inbox(bytes);
  const int vrank = (me - root + p) % p;
  sim::TimeUs t = t0;
  int mask = 1;
  while (mask < p) {
    if ((vrank & mask) == 0) {
      const int vsrc = vrank | mask;
      if (vsrc < p) {
        t = step_exchange(comm, ch, 1, -1, nullptr, 0, (vsrc + root) % p,
                          inbox.data(), bytes, t, true);
        throw_if_error(apply_reduce(dt, op, inbox.data(), acc, count),
                       "xccl reduce");
      }
    } else {
      t = step_exchange(comm, ch, 1, ((vrank ^ mask) + root) % p, acc, bytes, -1,
                        nullptr, 0, t, true);
      break;
    }
    mask <<= 1;
  }
  return t;
}

XcclResult RingCclBackend::reduce(const void* sendbuf, void* recvbuf,
                                  std::size_t count, DataType dt, ReduceOp op,
                                  int root, CclComm& comm, device::Stream& stream) {
  if (!comm.valid()) return XcclResult::InvalidUsage;
  if (root < 0 || root >= comm.nranks()) return XcclResult::InvalidArgument;
  if (auto r = check_reduce(dt, op); !ok(r)) return r;
  const std::size_t bytes = count * datatype_size(dt);
  const fabric::ChannelId ch = comm.next_op_channel();
  const sim::TimeUs t0 = begin_op(stream);
  const int p = comm.nranks();
  const int me = comm.rank();

  sim::TimeUs t;
  if (p == 1) {
    if (sendbuf != recvbuf) std::memcpy(recvbuf, sendbuf, bytes);
    t = t0;
  } else if (bytes <= prof_.tree_threshold ||
             count < static_cast<std::size_t>(p)) {
    t = reduce_tree(sendbuf, recvbuf, count, dt, op, root, comm, ch, t0);
  } else {
    // Ring reduce-scatter, then every rank ships its reduced block to root.
    const std::size_t esz = datatype_size(dt);
    const std::size_t up = static_cast<std::size_t>(p);
    const std::size_t block_count = (count + up - 1) / up;
    std::vector<std::byte> scratch(block_count * up * esz, std::byte{0});
    std::memcpy(scratch.data(), sendbuf, count * esz);
    t = ring_reduce_scatter(scratch.data(), scratch.data(), block_count, dt, op,
                            comm, ch, t0);
    const std::size_t block = block_count * esz;
    if (me == root) {
      std::vector<std::byte> gathered(block * up);
      std::memcpy(gathered.data() + static_cast<std::size_t>(me) * block,
                  scratch.data() + static_cast<std::size_t>(me) * block, block);
      for (int r = 0; r < p; ++r) {
        if (r == me) continue;
        t = step_exchange(comm, ch, 200, -1, nullptr, 0, r,
                          gathered.data() + static_cast<std::size_t>(r) * block,
                          block, t, false);
      }
      std::memcpy(recvbuf, gathered.data(), count * esz);
    } else {
      t = step_exchange(comm, ch, 200, root,
                        scratch.data() + static_cast<std::size_t>(me) * block,
                        block, -1, nullptr, 0, t, false);
    }
  }
  if (me == root && op == ReduceOp::Avg) {
    throw_if_error(scale_inplace(dt, recvbuf, count, 1.0 / p), "xccl reduce avg");
  }
  stream.advance_tail_to(t + quirk_extra(comm, bytes));
  return XcclResult::Success;
}

// ---- AllGather / ReduceScatter ----------------------------------------------

XcclResult RingCclBackend::all_gather(const void* sendbuf, void* recvbuf,
                                      std::size_t sendcount, DataType dt,
                                      CclComm& comm, device::Stream& stream) {
  if (!comm.valid()) return XcclResult::InvalidUsage;
  if (auto r = check_move(dt); !ok(r)) return r;
  const int p = comm.nranks();
  const int me = comm.rank();
  const std::size_t block = sendcount * datatype_size(dt);
  const fabric::ChannelId ch = comm.next_op_channel();
  sim::TimeUs t = begin_op(stream);

  std::memcpy(at(recvbuf, static_cast<std::size_t>(me) * block), sendbuf, block);
  const int right = (me + 1) % p;
  const int left = (me - 1 + p) % p;
  for (int s = 0; s < p - 1; ++s) {
    const auto send_block = static_cast<std::size_t>((me - s + p) % p);
    const auto recv_block = static_cast<std::size_t>((me - s - 1 + p) % p);
    t = step_exchange(comm, ch, s, right, at(recvbuf, send_block * block), block,
                      left, at(recvbuf, recv_block * block), block, t, false);
  }
  stream.advance_tail_to(t);
  return XcclResult::Success;
}

XcclResult RingCclBackend::reduce_scatter(const void* sendbuf, void* recvbuf,
                                          std::size_t recvcount, DataType dt,
                                          ReduceOp op, CclComm& comm,
                                          device::Stream& stream) {
  if (!comm.valid()) return XcclResult::InvalidUsage;
  if (auto r = check_reduce(dt, op); !ok(r)) return r;
  const int p = comm.nranks();
  const int me = comm.rank();
  const std::size_t esz = datatype_size(dt);
  const std::size_t block = recvcount * esz;
  const fabric::ChannelId ch = comm.next_op_channel();
  sim::TimeUs t = begin_op(stream);

  if (p == 1) {
    if (sendbuf != recvbuf) std::memcpy(recvbuf, sendbuf, block);
  } else {
    std::vector<std::byte> scratch(block * static_cast<std::size_t>(p));
    t = ring_reduce_scatter(sendbuf, scratch.data(), recvcount, dt, op, comm, ch,
                            t);
    std::memcpy(recvbuf, scratch.data() + static_cast<std::size_t>(me) * block,
                block);
  }
  if (op == ReduceOp::Avg) {
    throw_if_error(scale_inplace(dt, recvbuf, recvcount, 1.0 / p),
                   "xccl reduce_scatter avg");
  }
  stream.advance_tail_to(t);
  return XcclResult::Success;
}

// ---- Point-to-point -----------------------------------------------------------

XcclResult RingCclBackend::send(const void* buf, std::size_t count, DataType dt,
                                int peer, CclComm& comm, device::Stream& stream) {
  if (!comm.valid()) return XcclResult::InvalidUsage;
  if (peer < 0 || peer >= comm.nranks()) return XcclResult::InvalidArgument;
  if (auto r = check_move(dt); !ok(r)) return r;
  const std::size_t bytes = count * datatype_size(dt);

  if (group_depth_ > 0) {
    group_queue_.push_back(QueuedP2p{true, buf, nullptr, bytes,
                                     comm.world_rank(peer), &comm, &stream});
    return XcclResult::Success;
  }
  const sim::TimeUs t0 = begin_op(stream);
  fabric::SendPolicy policy{.rendezvous = true, .eager_complete_us = 0.0};
  auto ps = ctx().endpoint_of(comm.world_rank(peer))
                .deliver(ctx().rank(), 0, comm.p2p_channel(), buf, bytes, t0,
                         policy);
  sim::VirtualClock scratch;
  stream.advance_tail_to(ps.wait(scratch));
  return XcclResult::Success;
}

XcclResult RingCclBackend::recv(void* buf, std::size_t count, DataType dt, int peer,
                                CclComm& comm, device::Stream& stream) {
  if (!comm.valid()) return XcclResult::InvalidUsage;
  if (peer < 0 || peer >= comm.nranks()) return XcclResult::InvalidArgument;
  if (auto r = check_move(dt); !ok(r)) return r;
  const std::size_t bytes = count * datatype_size(dt);

  if (group_depth_ > 0) {
    group_queue_.push_back(QueuedP2p{false, nullptr, buf, bytes,
                                     comm.world_rank(peer), &comm, &stream});
    return XcclResult::Success;
  }
  const sim::TimeUs t0 = begin_op(stream);
  auto cost = [this](int sw, std::size_t b) { return p2p_cost(sw, b, 1); };
  auto pr = ctx().endpoint().post_recv(comm.world_rank(peer), 0,
                                       comm.p2p_channel(), buf, bytes, t0, cost);
  sim::VirtualClock scratch;
  stream.advance_tail_to(pr.wait(scratch).completion);
  return XcclResult::Success;
}

// ---- Group calls ----------------------------------------------------------------

XcclResult RingCclBackend::group_start() {
  ++group_depth_;
  return XcclResult::Success;
}

XcclResult RingCclBackend::group_end() {
  if (group_depth_ == 0) return XcclResult::InvalidUsage;
  if (--group_depth_ > 0) return XcclResult::Success;

  // One launch covers the whole group (batched kernel launch).
  ctx().clock().advance(prof_.launch_us);
  sim::TimeUs t0 = ctx().clock().now();
  std::size_t n_recvs = 0;
  std::size_t n_sends = 0;
  for (const auto& op : group_queue_) {
    t0 = std::max(t0, op.stream->tail());
    if (op.is_send) {
      ++n_sends;
    } else {
      ++n_recvs;
    }
  }
  const bool bidir = n_sends > 0 && n_recvs > 0;

  // Post every send first, then every recv: grouped operations execute
  // concurrently, so ordering cannot deadlock. Incoming transfers share
  // link bandwidth (`n_recvs` contention factor).
  struct Outcome {
    device::Stream* stream;
    fabric::PendingSend ps;
    fabric::PendingRecv pr;
  };
  std::vector<Outcome> outcomes;
  outcomes.reserve(group_queue_.size());
  for (const auto& op : group_queue_) {
    if (op.is_send) {
      fabric::SendPolicy policy{.rendezvous = true, .eager_complete_us = 0.0};
      outcomes.push_back(Outcome{
          op.stream,
          ctx().endpoint_of(op.peer_world)
              .deliver(ctx().rank(), 0, op.comm->p2p_channel(), op.sbuf, op.bytes,
                       t0, policy),
          {}});
    }
  }
  for (const auto& op : group_queue_) {
    if (!op.is_send) {
      auto cost = [this, n_recvs, bidir](int sw, std::size_t b) {
        return p2p_cost(sw, b, n_recvs, bidir);
      };
      outcomes.push_back(Outcome{
          op.stream,
          {},
          ctx().endpoint().post_recv(op.peer_world, 0, op.comm->p2p_channel(),
                                     op.rbuf, op.bytes, t0, cost)});
    }
  }
  group_queue_.clear();

  sim::VirtualClock scratch;
  for (auto& o : outcomes) {
    sim::TimeUs t = t0;
    if (o.ps.valid()) t = std::max(t, o.ps.wait(scratch));
    if (o.pr.valid()) t = std::max(t, o.pr.wait(scratch).completion);
    o.stream->advance_tail_to(t);
  }
  return XcclResult::Success;
}

}  // namespace mpixccl::xccl
