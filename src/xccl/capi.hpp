#pragma once
// The unified xCCL C-style API (paper Sec. 3.1: "xCCL APIs map corresponding
// NVIDIA, AMD, Habana, or Microsoft libraries under the xccl prefix").
//
// These free functions mirror the NCCL API shape one-for-one —
// xcclCommInitRank, xcclAllReduce, xcclGroupStart/End, xcclSend/Recv — so
// code like the paper's Listing 1 compiles as written. Each rank thread
// first binds its backend with xcclBindDevice(); the functions then route
// through a thread-local binding, the same way the real libraries key off
// the current CUDA/HIP device.
//
// The C++ layers (core::XcclMpi) use xccl::CclBackend directly; this API
// exists for user code and examples that want the vendor-library feel.

#include <cstddef>

#include "device/stream.hpp"
#include "fabric/world.hpp"
#include "xccl/backend.hpp"

namespace mpixccl::xccl {

using xcclResult_t = XcclResult;
using xcclDataType_t = DataType;
using xcclRedOp_t = ReduceOp;
using xcclUniqueId = UniqueId;
/// Opaque communicator handle (owned; destroy with xcclCommDestroy).
using xcclComm_t = CclComm*;
/// Stream handle (non-owning; typically &ctx.stream()).
using xcclStream_t = device::Stream*;

// Datatype/op constants under the xccl prefix, mirroring ncclFloat etc.
inline constexpr xcclDataType_t xcclInt8 = DataType::Int8;
inline constexpr xcclDataType_t xcclInt32 = DataType::Int32;
inline constexpr xcclDataType_t xcclInt64 = DataType::Int64;
inline constexpr xcclDataType_t xcclFloat16 = DataType::Float16;
inline constexpr xcclDataType_t xcclBfloat16 = DataType::BFloat16;
inline constexpr xcclDataType_t xcclFloat = DataType::Float32;
inline constexpr xcclDataType_t xcclDouble = DataType::Float64;
inline constexpr xcclRedOp_t xcclSum = ReduceOp::Sum;
inline constexpr xcclRedOp_t xcclProd = ReduceOp::Prod;
inline constexpr xcclRedOp_t xcclMin = ReduceOp::Min;
inline constexpr xcclRedOp_t xcclMax = ReduceOp::Max;
inline constexpr xcclRedOp_t xcclAvg = ReduceOp::Avg;

/// Bind this rank thread to a backend (analog of cudaSetDevice + library
/// selection). `kind` defaults to the vendor-native CCL of the profile.
/// Must be called before any other xccl* function on this thread; rebinding
/// replaces the previous backend.
void xcclBindDevice(fabric::RankContext& ctx,
                    std::optional<CclKind> kind = std::nullopt);

/// The backend currently bound to this thread (throws Error when unbound).
CclBackend& xcclCurrentBackend();

/// Generate a unique id on one rank (analog of ncclGetUniqueId); distribute
/// it out-of-band (e.g. MPI_Bcast) like the real flow.
xcclResult_t xcclGetUniqueId(xcclUniqueId* id);

xcclResult_t xcclCommInitRank(xcclComm_t* comm, int nranks,
                              const xcclUniqueId& id, int rank);
xcclResult_t xcclCommDestroy(xcclComm_t comm);
xcclResult_t xcclCommCount(xcclComm_t comm, int* count);
xcclResult_t xcclCommUserRank(xcclComm_t comm, int* rank);

// ---- The five built-in collectives -----------------------------------------
xcclResult_t xcclAllReduce(const void* sendbuff, void* recvbuff,
                           std::size_t count, xcclDataType_t datatype,
                           xcclRedOp_t op, xcclComm_t comm, xcclStream_t stream);
xcclResult_t xcclBroadcast(void* buff, std::size_t count,
                           xcclDataType_t datatype, int root, xcclComm_t comm,
                           xcclStream_t stream);
xcclResult_t xcclReduce(const void* sendbuff, void* recvbuff, std::size_t count,
                        xcclDataType_t datatype, xcclRedOp_t op, int root,
                        xcclComm_t comm, xcclStream_t stream);
xcclResult_t xcclAllGather(const void* sendbuff, void* recvbuff,
                           std::size_t sendcount, xcclDataType_t datatype,
                           xcclComm_t comm, xcclStream_t stream);
xcclResult_t xcclReduceScatter(const void* sendbuff, void* recvbuff,
                               std::size_t recvcount, xcclDataType_t datatype,
                               xcclRedOp_t op, xcclComm_t comm,
                               xcclStream_t stream);

// ---- Point-to-point + groups (the Listing 1 building blocks) ---------------
xcclResult_t xcclSend(const void* sendbuff, std::size_t count,
                      xcclDataType_t datatype, int peer, xcclComm_t comm,
                      xcclStream_t stream);
xcclResult_t xcclRecv(void* recvbuff, std::size_t count, xcclDataType_t datatype,
                      int peer, xcclComm_t comm, xcclStream_t stream);
xcclResult_t xcclGroupStart();
xcclResult_t xcclGroupEnd();

/// Block the calling rank until the stream drains (cudaStreamSynchronize).
xcclResult_t xcclStreamSynchronize(xcclStream_t stream);

// ---- Persistent collectives (MPI_Allreduce_init-shaped) ---------------------
// Init binds the full argument tuple — buffers, count, datatype, op, comm,
// stream — into a reusable handle; xcclOpStart launches the captured
// collective on the captured stream without re-validating any of it, and
// xcclOpWait synchronizes that stream. start/wait must alternate; free after
// wait (or before any start). The higher-level plan cache lives in
// core::XcclMpi — this is the raw per-backend replay primitive it maps onto.

/// Opaque persistent-op handle (owned; release with xcclOpFree).
using xcclOp_t = struct xcclPersistentOp*;

xcclResult_t xcclAllReduceInit(xcclOp_t* op, const void* sendbuff,
                               void* recvbuff, std::size_t count,
                               xcclDataType_t datatype, xcclRedOp_t redop,
                               xcclComm_t comm, xcclStream_t stream);
xcclResult_t xcclBroadcastInit(xcclOp_t* op, void* buff, std::size_t count,
                               xcclDataType_t datatype, int root,
                               xcclComm_t comm, xcclStream_t stream);
xcclResult_t xcclReduceInit(xcclOp_t* op, const void* sendbuff, void* recvbuff,
                            std::size_t count, xcclDataType_t datatype,
                            xcclRedOp_t redop, int root, xcclComm_t comm,
                            xcclStream_t stream);
xcclResult_t xcclAllGatherInit(xcclOp_t* op, const void* sendbuff,
                               void* recvbuff, std::size_t sendcount,
                               xcclDataType_t datatype, xcclComm_t comm,
                               xcclStream_t stream);
xcclResult_t xcclReduceScatterInit(xcclOp_t* op, const void* sendbuff,
                                   void* recvbuff, std::size_t recvcount,
                                   xcclDataType_t datatype, xcclRedOp_t redop,
                                   xcclComm_t comm, xcclStream_t stream);

/// Launch the captured collective (backend launch only; no sync).
xcclResult_t xcclOpStart(xcclOp_t op);
/// Synchronize the captured stream, completing the last start.
xcclResult_t xcclOpWait(xcclOp_t op);
xcclResult_t xcclOpFree(xcclOp_t op);

}  // namespace mpixccl::xccl
