#include "xccl/capi.hpp"

#include <atomic>
#include <memory>

namespace mpixccl::xccl {

namespace {

struct ThreadBinding {
  std::unique_ptr<CclBackend> backend;
  fabric::RankContext* ctx = nullptr;
};

ThreadBinding& binding() {
  thread_local ThreadBinding b;
  return b;
}

std::atomic<std::uint64_t>& unique_id_counter() {
  static std::atomic<std::uint64_t> c{1};
  return c;
}

}  // namespace

void xcclBindDevice(fabric::RankContext& ctx, std::optional<CclKind> kind) {
  const CclKind k = kind.value_or(native_ccl(ctx.profile().vendor));
  const sim::CclProfile& profile =
      (k == CclKind::Msccl && ctx.profile().msccl.has_value())
          ? *ctx.profile().msccl
          : ctx.profile().ccl;
  binding().backend = make_backend(k, ctx, profile);
  binding().ctx = &ctx;
}

CclBackend& xcclCurrentBackend() {
  require(binding().backend != nullptr,
          "xccl C API: call xcclBindDevice() on this rank thread first");
  return *binding().backend;
}

xcclResult_t xcclGetUniqueId(xcclUniqueId* id) {
  if (id == nullptr) return XcclResult::InvalidArgument;
  // Seeded by the binding's rank so distinct roots generate distinct ids.
  const auto seq = unique_id_counter().fetch_add(1);
  const auto salt =
      binding().ctx != nullptr ? static_cast<std::uint64_t>(binding().ctx->rank())
                               : 0;
  *id = UniqueId::derive(0xca91ull ^ salt, seq);
  return XcclResult::Success;
}

xcclResult_t xcclCommInitRank(xcclComm_t* comm, int nranks,
                              const xcclUniqueId& id, int rank) {
  if (comm == nullptr) return XcclResult::InvalidArgument;
  auto owned = std::make_unique<CclComm>();
  const XcclResult r =
      xcclCurrentBackend().comm_init_rank(*owned, nranks, id, rank);
  if (!ok(r)) return r;
  *comm = owned.release();
  return XcclResult::Success;
}

xcclResult_t xcclCommDestroy(xcclComm_t comm) {
  delete comm;
  return XcclResult::Success;
}

xcclResult_t xcclCommCount(xcclComm_t comm, int* count) {
  if (comm == nullptr || count == nullptr) return XcclResult::InvalidArgument;
  *count = comm->nranks();
  return XcclResult::Success;
}

xcclResult_t xcclCommUserRank(xcclComm_t comm, int* rank) {
  if (comm == nullptr || rank == nullptr) return XcclResult::InvalidArgument;
  *rank = comm->rank();
  return XcclResult::Success;
}

namespace {
xcclResult_t check_handles(xcclComm_t comm, xcclStream_t stream) {
  if (comm == nullptr || stream == nullptr) return XcclResult::InvalidArgument;
  return XcclResult::Success;
}
}  // namespace

xcclResult_t xcclAllReduce(const void* sendbuff, void* recvbuff,
                           std::size_t count, xcclDataType_t datatype,
                           xcclRedOp_t op, xcclComm_t comm, xcclStream_t stream) {
  if (auto r = check_handles(comm, stream); !ok(r)) return r;
  return xcclCurrentBackend().all_reduce(sendbuff, recvbuff, count, datatype, op,
                                         *comm, *stream);
}

xcclResult_t xcclBroadcast(void* buff, std::size_t count, xcclDataType_t datatype,
                           int root, xcclComm_t comm, xcclStream_t stream) {
  if (auto r = check_handles(comm, stream); !ok(r)) return r;
  return xcclCurrentBackend().broadcast(buff, count, datatype, root, *comm,
                                        *stream);
}

xcclResult_t xcclReduce(const void* sendbuff, void* recvbuff, std::size_t count,
                        xcclDataType_t datatype, xcclRedOp_t op, int root,
                        xcclComm_t comm, xcclStream_t stream) {
  if (auto r = check_handles(comm, stream); !ok(r)) return r;
  return xcclCurrentBackend().reduce(sendbuff, recvbuff, count, datatype, op,
                                     root, *comm, *stream);
}

xcclResult_t xcclAllGather(const void* sendbuff, void* recvbuff,
                           std::size_t sendcount, xcclDataType_t datatype,
                           xcclComm_t comm, xcclStream_t stream) {
  if (auto r = check_handles(comm, stream); !ok(r)) return r;
  return xcclCurrentBackend().all_gather(sendbuff, recvbuff, sendcount, datatype,
                                         *comm, *stream);
}

xcclResult_t xcclReduceScatter(const void* sendbuff, void* recvbuff,
                               std::size_t recvcount, xcclDataType_t datatype,
                               xcclRedOp_t op, xcclComm_t comm,
                               xcclStream_t stream) {
  if (auto r = check_handles(comm, stream); !ok(r)) return r;
  return xcclCurrentBackend().reduce_scatter(sendbuff, recvbuff, recvcount,
                                             datatype, op, *comm, *stream);
}

xcclResult_t xcclSend(const void* sendbuff, std::size_t count,
                      xcclDataType_t datatype, int peer, xcclComm_t comm,
                      xcclStream_t stream) {
  if (auto r = check_handles(comm, stream); !ok(r)) return r;
  return xcclCurrentBackend().send(sendbuff, count, datatype, peer, *comm,
                                   *stream);
}

xcclResult_t xcclRecv(void* recvbuff, std::size_t count, xcclDataType_t datatype,
                      int peer, xcclComm_t comm, xcclStream_t stream) {
  if (auto r = check_handles(comm, stream); !ok(r)) return r;
  return xcclCurrentBackend().recv(recvbuff, count, datatype, peer, *comm,
                                   *stream);
}

xcclResult_t xcclGroupStart() { return xcclCurrentBackend().group_start(); }

xcclResult_t xcclGroupEnd() { return xcclCurrentBackend().group_end(); }

xcclResult_t xcclStreamSynchronize(xcclStream_t stream) {
  if (stream == nullptr) return XcclResult::InvalidArgument;
  require(binding().ctx != nullptr, "xccl C API: unbound thread");
  stream->synchronize(binding().ctx->clock());
  return XcclResult::Success;
}

}  // namespace mpixccl::xccl
