#include "xccl/capi.hpp"

#include <atomic>
#include <memory>

namespace mpixccl::xccl {

namespace {

struct ThreadBinding {
  std::unique_ptr<CclBackend> backend;
  fabric::RankContext* ctx = nullptr;
};

ThreadBinding& binding() {
  thread_local ThreadBinding b;
  return b;
}

std::atomic<std::uint64_t>& unique_id_counter() {
  static std::atomic<std::uint64_t> c{1};
  return c;
}

}  // namespace

void xcclBindDevice(fabric::RankContext& ctx, std::optional<CclKind> kind) {
  const CclKind k = kind.value_or(native_ccl(ctx.profile().vendor));
  const sim::CclProfile& profile =
      (k == CclKind::Msccl && ctx.profile().msccl.has_value())
          ? *ctx.profile().msccl
          : ctx.profile().ccl;
  binding().backend = make_backend(k, ctx, profile);
  binding().ctx = &ctx;
}

CclBackend& xcclCurrentBackend() {
  require(binding().backend != nullptr,
          "xccl C API: call xcclBindDevice() on this rank thread first");
  return *binding().backend;
}

xcclResult_t xcclGetUniqueId(xcclUniqueId* id) {
  if (id == nullptr) return XcclResult::InvalidArgument;
  // Seeded by the binding's rank so distinct roots generate distinct ids.
  const auto seq = unique_id_counter().fetch_add(1);
  const auto salt =
      binding().ctx != nullptr ? static_cast<std::uint64_t>(binding().ctx->rank())
                               : 0;
  *id = UniqueId::derive(0xca91ull ^ salt, seq);
  return XcclResult::Success;
}

xcclResult_t xcclCommInitRank(xcclComm_t* comm, int nranks,
                              const xcclUniqueId& id, int rank) {
  if (comm == nullptr) return XcclResult::InvalidArgument;
  auto owned = std::make_unique<CclComm>();
  const XcclResult r =
      xcclCurrentBackend().comm_init_rank(*owned, nranks, id, rank);
  if (!ok(r)) return r;
  *comm = owned.release();
  return XcclResult::Success;
}

xcclResult_t xcclCommDestroy(xcclComm_t comm) {
  delete comm;
  return XcclResult::Success;
}

xcclResult_t xcclCommCount(xcclComm_t comm, int* count) {
  if (comm == nullptr || count == nullptr) return XcclResult::InvalidArgument;
  *count = comm->nranks();
  return XcclResult::Success;
}

xcclResult_t xcclCommUserRank(xcclComm_t comm, int* rank) {
  if (comm == nullptr || rank == nullptr) return XcclResult::InvalidArgument;
  *rank = comm->rank();
  return XcclResult::Success;
}

namespace {
xcclResult_t check_handles(xcclComm_t comm, xcclStream_t stream) {
  if (comm == nullptr || stream == nullptr) return XcclResult::InvalidArgument;
  return XcclResult::Success;
}
}  // namespace

xcclResult_t xcclAllReduce(const void* sendbuff, void* recvbuff,
                           std::size_t count, xcclDataType_t datatype,
                           xcclRedOp_t op, xcclComm_t comm, xcclStream_t stream) {
  if (auto r = check_handles(comm, stream); !ok(r)) return r;
  return xcclCurrentBackend().all_reduce(sendbuff, recvbuff, count, datatype, op,
                                         *comm, *stream);
}

xcclResult_t xcclBroadcast(void* buff, std::size_t count, xcclDataType_t datatype,
                           int root, xcclComm_t comm, xcclStream_t stream) {
  if (auto r = check_handles(comm, stream); !ok(r)) return r;
  return xcclCurrentBackend().broadcast(buff, count, datatype, root, *comm,
                                        *stream);
}

xcclResult_t xcclReduce(const void* sendbuff, void* recvbuff, std::size_t count,
                        xcclDataType_t datatype, xcclRedOp_t op, int root,
                        xcclComm_t comm, xcclStream_t stream) {
  if (auto r = check_handles(comm, stream); !ok(r)) return r;
  return xcclCurrentBackend().reduce(sendbuff, recvbuff, count, datatype, op,
                                     root, *comm, *stream);
}

xcclResult_t xcclAllGather(const void* sendbuff, void* recvbuff,
                           std::size_t sendcount, xcclDataType_t datatype,
                           xcclComm_t comm, xcclStream_t stream) {
  if (auto r = check_handles(comm, stream); !ok(r)) return r;
  return xcclCurrentBackend().all_gather(sendbuff, recvbuff, sendcount, datatype,
                                         *comm, *stream);
}

xcclResult_t xcclReduceScatter(const void* sendbuff, void* recvbuff,
                               std::size_t recvcount, xcclDataType_t datatype,
                               xcclRedOp_t op, xcclComm_t comm,
                               xcclStream_t stream) {
  if (auto r = check_handles(comm, stream); !ok(r)) return r;
  return xcclCurrentBackend().reduce_scatter(sendbuff, recvbuff, recvcount,
                                             datatype, op, *comm, *stream);
}

xcclResult_t xcclSend(const void* sendbuff, std::size_t count,
                      xcclDataType_t datatype, int peer, xcclComm_t comm,
                      xcclStream_t stream) {
  if (auto r = check_handles(comm, stream); !ok(r)) return r;
  return xcclCurrentBackend().send(sendbuff, count, datatype, peer, *comm,
                                   *stream);
}

xcclResult_t xcclRecv(void* recvbuff, std::size_t count, xcclDataType_t datatype,
                      int peer, xcclComm_t comm, xcclStream_t stream) {
  if (auto r = check_handles(comm, stream); !ok(r)) return r;
  return xcclCurrentBackend().recv(recvbuff, count, datatype, peer, *comm,
                                   *stream);
}

xcclResult_t xcclGroupStart() { return xcclCurrentBackend().group_start(); }

xcclResult_t xcclGroupEnd() { return xcclCurrentBackend().group_end(); }

xcclResult_t xcclStreamSynchronize(xcclStream_t stream) {
  if (stream == nullptr) return XcclResult::InvalidArgument;
  require(binding().ctx != nullptr, "xccl C API: unbound thread");
  stream->synchronize(binding().ctx->clock());
  return XcclResult::Success;
}

// Persistent-op handle: the captured argument tuple plus which collective to
// replay (the header's xcclOp_t forward-declares this type).
struct xcclPersistentOp {
  enum class Kind { AllReduce, Broadcast, Reduce, AllGather, ReduceScatter };
  Kind kind = Kind::AllReduce;
  const void* sendbuff = nullptr;
  void* recvbuff = nullptr;
  std::size_t count = 0;
  xcclDataType_t datatype = DataType::Float32;
  xcclRedOp_t redop = ReduceOp::Sum;
  int root = 0;
  xcclComm_t comm = nullptr;
  xcclStream_t stream = nullptr;
};

namespace {
xcclResult_t make_op(xcclOp_t* op, xcclPersistentOp captured) {
  if (op == nullptr) return XcclResult::InvalidArgument;
  if (auto r = check_handles(captured.comm, captured.stream); !ok(r)) return r;
  *op = new xcclPersistentOp(captured);
  return XcclResult::Success;
}
}  // namespace

xcclResult_t xcclAllReduceInit(xcclOp_t* op, const void* sendbuff,
                               void* recvbuff, std::size_t count,
                               xcclDataType_t datatype, xcclRedOp_t redop,
                               xcclComm_t comm, xcclStream_t stream) {
  return make_op(op, {xcclPersistentOp::Kind::AllReduce, sendbuff, recvbuff,
                      count, datatype, redop, 0, comm, stream});
}

xcclResult_t xcclBroadcastInit(xcclOp_t* op, void* buff, std::size_t count,
                               xcclDataType_t datatype, int root,
                               xcclComm_t comm, xcclStream_t stream) {
  return make_op(op, {xcclPersistentOp::Kind::Broadcast, nullptr, buff, count,
                      datatype, ReduceOp::Sum, root, comm, stream});
}

xcclResult_t xcclReduceInit(xcclOp_t* op, const void* sendbuff, void* recvbuff,
                            std::size_t count, xcclDataType_t datatype,
                            xcclRedOp_t redop, int root, xcclComm_t comm,
                            xcclStream_t stream) {
  return make_op(op, {xcclPersistentOp::Kind::Reduce, sendbuff, recvbuff, count,
                      datatype, redop, root, comm, stream});
}

xcclResult_t xcclAllGatherInit(xcclOp_t* op, const void* sendbuff,
                               void* recvbuff, std::size_t sendcount,
                               xcclDataType_t datatype, xcclComm_t comm,
                               xcclStream_t stream) {
  return make_op(op, {xcclPersistentOp::Kind::AllGather, sendbuff, recvbuff,
                      sendcount, datatype, ReduceOp::Sum, 0, comm, stream});
}

xcclResult_t xcclReduceScatterInit(xcclOp_t* op, const void* sendbuff,
                                   void* recvbuff, std::size_t recvcount,
                                   xcclDataType_t datatype, xcclRedOp_t redop,
                                   xcclComm_t comm, xcclStream_t stream) {
  return make_op(op, {xcclPersistentOp::Kind::ReduceScatter, sendbuff, recvbuff,
                      recvcount, datatype, redop, 0, comm, stream});
}

xcclResult_t xcclOpStart(xcclOp_t op) {
  if (op == nullptr) return XcclResult::InvalidArgument;
  CclBackend& backend = xcclCurrentBackend();
  switch (op->kind) {
    case xcclPersistentOp::Kind::AllReduce:
      return backend.all_reduce(op->sendbuff, op->recvbuff, op->count,
                                op->datatype, op->redop, *op->comm, *op->stream);
    case xcclPersistentOp::Kind::Broadcast:
      return backend.broadcast(op->recvbuff, op->count, op->datatype, op->root,
                               *op->comm, *op->stream);
    case xcclPersistentOp::Kind::Reduce:
      return backend.reduce(op->sendbuff, op->recvbuff, op->count, op->datatype,
                            op->redop, op->root, *op->comm, *op->stream);
    case xcclPersistentOp::Kind::AllGather:
      return backend.all_gather(op->sendbuff, op->recvbuff, op->count,
                                op->datatype, *op->comm, *op->stream);
    case xcclPersistentOp::Kind::ReduceScatter:
      return backend.reduce_scatter(op->sendbuff, op->recvbuff, op->count,
                                    op->datatype, op->redop, *op->comm,
                                    *op->stream);
  }
  return XcclResult::InvalidArgument;
}

xcclResult_t xcclOpWait(xcclOp_t op) {
  if (op == nullptr) return XcclResult::InvalidArgument;
  return xcclStreamSynchronize(op->stream);
}

xcclResult_t xcclOpFree(xcclOp_t op) {
  delete op;
  return XcclResult::Success;
}

}  // namespace mpixccl::xccl
